package guestos

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"overshadow/internal/sim"
)

func newTestFS() *FS {
	return NewFS(sim.NewWorld(sim.DefaultCostModel(), 3), 4096)
}

func TestFSCreateLookupStat(t *testing.T) {
	fs := newTestFS()
	ino, err := fs.Create("/a.txt", false)
	if err != OK {
		t.Fatal(err)
	}
	st, err := fs.Stat("/a.txt")
	if err != OK || st.Ino != ino || st.Type != TypeFile || st.Size != 0 {
		t.Fatalf("stat = %+v, %v", st, err)
	}
	if _, err := fs.Stat("/missing"); err != ENOENT {
		t.Fatalf("missing stat: %v", err)
	}
}

func TestFSDirectoryTree(t *testing.T) {
	fs := newTestFS()
	if err := fs.Mkdir("/a"); err != OK {
		t.Fatal(err)
	}
	if err := fs.Mkdir("/a/b"); err != OK {
		t.Fatal(err)
	}
	if _, err := fs.Create("/a/b/c.txt", false); err != OK {
		t.Fatal(err)
	}
	names, err := fs.ReadDir("/a")
	if err != OK || len(names) != 1 || names[0] != "b" {
		t.Fatalf("readdir /a = %v, %v", names, err)
	}
	if err := fs.Mkdir("/a"); err != EEXIST {
		t.Fatalf("dup mkdir: %v", err)
	}
	if _, err := fs.Create("/nope/x", false); err != ENOENT {
		t.Fatalf("create in missing dir: %v", err)
	}
	if err := fs.Unlink("/a/b"); err != ENOTSUP {
		t.Fatalf("unlink non-empty dir: %v", err)
	}
}

func TestFSReadWriteSparse(t *testing.T) {
	fs := newTestFS()
	ino, _ := fs.Create("/s", false)
	// Write far past the start: hole reads as zeros.
	if _, err := fs.WriteAt(ino, 3*4096+17, []byte("tail")); err != OK {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	n, err := fs.ReadAt(ino, 4096, buf)
	if err != OK || n != 8 {
		t.Fatalf("hole read = %d, %v", n, err)
	}
	if !bytes.Equal(buf, make([]byte, 8)) {
		t.Fatal("hole not zero")
	}
	n, err = fs.ReadAt(ino, 3*4096+17, buf)
	if err != OK || n != 4 {
		t.Fatalf("tail read = %d, %v", n, err)
	}
	if string(buf[:4]) != "tail" {
		t.Fatalf("tail = %q", buf[:4])
	}
}

func TestFSUnlinkFreesBlocks(t *testing.T) {
	fs := newTestFS()
	before := len(fs.freeBlk)
	ino, _ := fs.Create("/big", false)
	if _, err := fs.WriteAt(ino, 0, make([]byte, 64*1024)); err != OK {
		t.Fatal(err)
	}
	if len(fs.freeBlk) >= before {
		t.Fatal("no blocks consumed")
	}
	if err := fs.Unlink("/big"); err != OK {
		t.Fatal(err)
	}
	if len(fs.freeBlk) != before {
		t.Fatalf("blocks leaked: %d -> %d", before, len(fs.freeBlk))
	}
}

func TestFSDiskFull(t *testing.T) {
	w := sim.NewWorld(sim.DefaultCostModel(), 3)
	fs := NewFS(w, 4) // 4 blocks total
	ino, _ := fs.Create("/f", false)
	if _, err := fs.WriteAt(ino, 0, make([]byte, 10*4096)); err != ENOSPC {
		t.Fatalf("want ENOSPC, got %v", err)
	}
	// After freeing, writes work again.
	fs.Truncate("/f", 0)
	if _, err := fs.WriteAt(ino, 0, make([]byte, 2*4096)); err != OK {
		t.Fatalf("write after truncate: %v", err)
	}
}

// TestFSModelBased runs random operation sequences against the FS and an
// in-memory reference model; contents and sizes must always agree.
func TestFSModelBased(t *testing.T) {
	fs := newTestFS()
	rng := sim.NewRNG(99)
	type ref struct{ data []byte }
	model := map[string]*ref{}
	inos := map[string]Ino{}

	paths := []string{"/f0", "/f1", "/f2", "/f3"}
	for step := 0; step < 3000; step++ {
		path := paths[rng.Intn(len(paths))]
		switch rng.Intn(5) {
		case 0: // create (truncating)
			ino, err := fs.Create(path, true)
			if err != OK {
				t.Fatalf("step %d create: %v", step, err)
			}
			inos[path] = ino
			model[path] = &ref{}
		case 1: // write at random offset
			if m, ok := model[path]; ok {
				off := rng.Intn(20000)
				n := rng.Intn(6000) + 1
				data := make([]byte, n)
				rng.Bytes(data)
				if _, err := fs.WriteAt(inos[path], uint64(off), data); err != OK {
					t.Fatalf("step %d write: %v", step, err)
				}
				if need := off + n; need > len(m.data) {
					m.data = append(m.data, make([]byte, need-len(m.data))...)
				}
				copy(m.data[off:], data)
			}
		case 2: // read at random offset and compare
			if m, ok := model[path]; ok {
				off := rng.Intn(25000)
				n := rng.Intn(6000) + 1
				got := make([]byte, n)
				gn, err := fs.ReadAt(inos[path], uint64(off), got)
				if err != OK {
					t.Fatalf("step %d read: %v", step, err)
				}
				want := []byte{}
				if off < len(m.data) {
					end := off + n
					if end > len(m.data) {
						end = len(m.data)
					}
					want = m.data[off:end]
				}
				if gn != len(want) || !bytes.Equal(got[:gn], want) {
					t.Fatalf("step %d read mismatch at %s+%d len %d (got %d bytes)",
						step, path, off, n, gn)
				}
			}
		case 3: // stat and compare size
			if m, ok := model[path]; ok {
				st, err := fs.Stat(path)
				if err != OK {
					t.Fatalf("step %d stat: %v", step, err)
				}
				if st.Size != uint64(len(m.data)) {
					t.Fatalf("step %d size %d, want %d", step, st.Size, len(m.data))
				}
			}
		case 4: // unlink
			if _, ok := model[path]; ok && rng.Intn(4) == 0 {
				if err := fs.Unlink(path); err != OK {
					t.Fatalf("step %d unlink: %v", step, err)
				}
				delete(model, path)
				delete(inos, path)
			}
		}
	}
}

func TestFSWriteReadPageProperty(t *testing.T) {
	fs := newTestFS()
	ino, _ := fs.Create("/p", false)
	f := func(idx uint8, fill byte) bool {
		page := make([]byte, 4096)
		for i := range page {
			page[i] = fill ^ byte(i)
		}
		if err := fs.WriteFilePage(ino, uint64(idx%32), page); err != OK {
			return false
		}
		got := make([]byte, 4096)
		if err := fs.ReadFilePage(ino, uint64(idx%32), got); err != OK {
			return false
		}
		return bytes.Equal(page, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSplitPath(t *testing.T) {
	cases := map[string]int{
		"/":          0,
		"/a":         1,
		"/a/b/c":     3,
		"a/b":        2,
		"//x//y/":    2,
		"/./a/./b/.": 2,
	}
	for p, n := range cases {
		if got := len(splitPath(p)); got != n {
			t.Errorf("splitPath(%q) = %d parts, want %d", p, got, n)
		}
	}
}

func TestFSHostHelpersErrors(t *testing.T) {
	fs := newTestFS()
	if _, err := fs.ReadFile("/ghost"); err != ENOENT {
		t.Fatalf("ReadFile ghost: %v", err)
	}
	if err := fs.WriteFile("/x/y", []byte("z")); err != ENOENT {
		t.Fatalf("WriteFile in missing dir: %v", err)
	}
	for i := 0; i < 50; i++ {
		p := fmt.Sprintf("/file%02d", i)
		if err := fs.WriteFile(p, []byte{byte(i)}); err != OK {
			t.Fatal(err)
		}
	}
	names, err := fs.ReadDir("/")
	if err != OK || len(names) != 50 {
		t.Fatalf("readdir: %d names, %v", len(names), err)
	}
}
