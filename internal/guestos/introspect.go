package guestos

import (
	"sort"

	"overshadow/internal/vmm"
)

// IntrospectClaims implements vmm.IntrospectSource: the kernel enumerates
// its scheduler and memory-map objects for the hypervisor-side monitor. An
// honest kernel reports exactly its run-queue and VMA state; the adversary
// hook lets a hostile kernel lie (hide tasks, drop regions) — the monitor
// compares whatever comes back against VMM ground truth, so the lie becomes
// a typed divergence, not a blind spot.
func (k *Kernel) IntrospectClaims() *vmm.IntrospectClaims {
	claims := &vmm.IntrospectClaims{}
	pids := make([]int, 0, len(k.procs))
	for pid := range k.procs {
		pids = append(pids, int(pid))
	}
	sort.Ints(pids)
	for _, pid := range pids {
		p := k.procs[Pid(pid)]
		if p.state == stateZombie || p.thread == nil {
			continue
		}
		st := "runnable"
		switch p.state {
		case stateRunning:
			st = "running"
		case stateBlocked:
			st = "blocked"
		}
		claims.Tasks = append(claims.Tasks, vmm.TaskClaim{
			Pid: uint64(p.pid), Domain: p.thread.Domain, State: st,
		})
		if !p.isThread && p.as != nil {
			for _, vma := range p.vmas {
				claims.Regions = append(claims.Regions, vmm.RegionClaim{
					AS: p.as.ID(), BaseVPN: vma.Base, Pages: vma.Pages,
				})
			}
		}
	}
	if k.Adversary.OnIntrospect != nil {
		k.Adversary.OnIntrospect(k, claims)
	}
	return claims
}
