package guestos

// FileDesc is an open-file description; fd table slots point at (possibly
// shared) FileDesc values, POSIX-style.
type FileDesc struct {
	ino      Ino
	pos      uint64
	flags    int
	refs     int
	pipe     *Pipe
	writeEnd bool // for pipe descriptors
}

// Pipe is a classic bounded byte pipe.
type Pipe struct {
	buf       []byte
	capacity  int
	readers   int
	writers   int
	waitRead  []*Proc
	waitWrite []*Proc
}

const pipeCapacity = 16 * 1024

func (pp *Pipe) addRef(writeEnd bool) {
	if writeEnd {
		pp.writers++
	} else {
		pp.readers++
	}
}

// allocFD finds the lowest free descriptor slot.
func (p *Proc) allocFD() (int, Errno) {
	for i, f := range p.fds {
		if f == nil {
			return i, OK
		}
	}
	return 0, EMFILE
}

func (p *Proc) fd(n int) (*FileDesc, Errno) {
	if n < 0 || n >= len(p.fds) || p.fds[n] == nil {
		return nil, EBADF
	}
	return p.fds[n], OK
}

// --- Kernel file operations ------------------------------------------------

func (k *Kernel) openFD(p *Proc, path string, flags int) (int, Errno) {
	var ino Ino
	if flags&OCreate != 0 {
		i, err := k.fs.Create(path, flags&OTrunc != 0)
		if err != OK {
			return 0, err
		}
		ino = i
	} else {
		n, err := k.fs.lookup(path)
		if err != OK {
			return 0, err
		}
		if n.typ == TypeDir && flags&(OWrOnly|ORdWr) != 0 {
			return 0, EISDIR
		}
		if flags&OTrunc != 0 {
			k.fs.truncate(n, 0)
		}
		ino = n.ino
	}
	fd, err := p.allocFD()
	if err != OK {
		return 0, err
	}
	p.fds[fd] = &FileDesc{ino: ino, flags: flags, refs: 1}
	return fd, OK
}

func (k *Kernel) closeFD(p *Proc, fd int) Errno {
	f, err := p.fd(fd)
	if err != OK {
		return err
	}
	p.fds[fd] = nil
	f.refs--
	if f.pipe != nil {
		pp := f.pipe
		if f.writeEnd {
			pp.writers--
			if pp.writers == 0 {
				for _, w := range pp.waitRead {
					k.wake(w)
				}
				pp.waitRead = nil
			}
		} else {
			pp.readers--
			if pp.readers == 0 {
				for _, w := range pp.waitWrite {
					k.wake(w)
				}
				pp.waitWrite = nil
			}
		}
	}
	return OK
}

func (k *Kernel) dupFD(p *Proc, fd int) (int, Errno) {
	f, err := p.fd(fd)
	if err != OK {
		return 0, err
	}
	nfd, err := p.allocFD()
	if err != OK {
		return 0, err
	}
	f.refs++
	if f.pipe != nil {
		f.pipe.addRef(f.writeEnd)
	}
	p.fds[nfd] = f
	return nfd, OK
}

func (k *Kernel) makePipe(p *Proc) (int, int, Errno) {
	rfd, err := p.allocFD()
	if err != OK {
		return 0, 0, err
	}
	// Temporarily occupy so allocFD finds the next slot.
	p.fds[rfd] = &FileDesc{}
	wfd, err := p.allocFD()
	if err != OK {
		p.fds[rfd] = nil
		return 0, 0, err
	}
	pp := &Pipe{capacity: pipeCapacity, readers: 1, writers: 1}
	p.fds[rfd] = &FileDesc{pipe: pp, refs: 1}
	p.fds[wfd] = &FileDesc{pipe: pp, writeEnd: true, refs: 1}
	return rfd, wfd, OK
}

// readFD reads up to len(buf) bytes into the kernel buffer buf.
func (k *Kernel) readFD(p *Proc, fd int, buf []byte) (int, Errno) {
	f, err := p.fd(fd)
	if err != OK {
		return 0, err
	}
	if f.pipe != nil {
		if f.writeEnd {
			return 0, EBADF
		}
		return k.pipeRead(p, f.pipe, buf)
	}
	if f.flags&(OWrOnly) != 0 {
		return 0, EBADF
	}
	n, e := k.fs.ReadAt(f.ino, f.pos, buf)
	if e != OK {
		return 0, e
	}
	f.pos += uint64(n)
	return n, OK
}

// writeFD writes the kernel buffer buf.
func (k *Kernel) writeFD(p *Proc, fd int, buf []byte) (int, Errno) {
	f, err := p.fd(fd)
	if err != OK {
		return 0, err
	}
	if f.pipe != nil {
		if !f.writeEnd {
			return 0, EBADF
		}
		return k.pipeWrite(p, f.pipe, buf)
	}
	if f.flags&(OWrOnly|ORdWr) == 0 {
		return 0, EBADF
	}
	pos := f.pos
	if f.flags&OAppend != 0 {
		st, e := k.fs.StatIno(f.ino)
		if e != OK {
			return 0, e
		}
		pos = st.Size
	}
	n, e := k.fs.WriteAt(f.ino, pos, buf)
	if e != OK {
		return n, e
	}
	f.pos = pos + uint64(n)
	return n, OK
}

func (k *Kernel) preadFD(p *Proc, fd int, off uint64, buf []byte) (int, Errno) {
	f, err := p.fd(fd)
	if err != OK {
		return 0, err
	}
	if f.pipe != nil {
		return 0, ESPIPE
	}
	return k.fs.ReadAt(f.ino, off, buf)
}

func (k *Kernel) pwriteFD(p *Proc, fd int, off uint64, buf []byte) (int, Errno) {
	f, err := p.fd(fd)
	if err != OK {
		return 0, err
	}
	if f.pipe != nil {
		return 0, ESPIPE
	}
	return k.fs.WriteAt(f.ino, off, buf)
}

func (k *Kernel) lseekFD(p *Proc, fd int, off int64, whence int) (uint64, Errno) {
	f, err := p.fd(fd)
	if err != OK {
		return 0, err
	}
	if f.pipe != nil {
		return 0, ESPIPE
	}
	var base int64
	switch whence {
	case SeekSet:
		base = 0
	case SeekCur:
		base = int64(f.pos)
	case SeekEnd:
		st, e := k.fs.StatIno(f.ino)
		if e != OK {
			return 0, e
		}
		base = int64(st.Size)
	default:
		return 0, EINVAL
	}
	np := base + off
	if np < 0 {
		return 0, EINVAL
	}
	f.pos = uint64(np)
	return f.pos, OK
}

// --- Pipe data path ----------------------------------------------------------

func (k *Kernel) pipeRead(p *Proc, pp *Pipe, buf []byte) (int, Errno) {
	for len(pp.buf) == 0 {
		if pp.writers == 0 {
			return 0, OK // EOF
		}
		pp.waitRead = append(pp.waitRead, p)
		k.block(p, "pipe-read")
	}
	n := copy(buf, pp.buf)
	pp.buf = pp.buf[n:]
	for _, w := range pp.waitWrite {
		k.wake(w)
	}
	pp.waitWrite = nil
	return n, OK
}

func (k *Kernel) pipeWrite(p *Proc, pp *Pipe, buf []byte) (int, Errno) {
	written := 0
	for written < len(buf) {
		if pp.readers == 0 {
			if written > 0 {
				return written, OK
			}
			return 0, EPIPE
		}
		space := pp.capacity - len(pp.buf)
		if space == 0 {
			pp.waitWrite = append(pp.waitWrite, p)
			k.block(p, "pipe-write")
			continue
		}
		n := space
		if n > len(buf)-written {
			n = len(buf) - written
		}
		pp.buf = append(pp.buf, buf[written:written+n]...)
		written += n
		for _, w := range pp.waitRead {
			k.wake(w)
		}
		pp.waitRead = nil
	}
	return written, OK
}
