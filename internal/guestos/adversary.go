package guestos

import "overshadow/internal/vmm"

// Adversary turns the guest kernel actively malicious. Each hook, when
// non-nil, runs at the corresponding kernel code path with full kernel
// privileges: the direct physical map, every process's system view, the
// swap device, and the register state traps expose. The hooks record what
// the "malicious OS" manages to observe so the security experiments (E8)
// can assert that cloaked data stays ciphertext and tampering is detected.
//
// The zero value is a benign kernel.
type Adversary struct {
	// OnSyscall runs at syscall dispatch with the registers the kernel
	// sees (post-scrub for cloaked threads).
	OnSyscall func(k *Kernel, p *Proc, no Sysno, kregs *vmm.Regs)
	// OnWriteData sees every buffer the kernel receives from write(2)
	// after copyin — ciphertext for properly marshalled cloaked I/O is
	// *not* what flows here; this observes what the kernel can see.
	OnWriteData func(k *Kernel, p *Proc, fd int, data []byte)
	// OnPageOut sees (and may mutate) the page image about to hit swap.
	OnPageOut func(k *Kernel, p *Proc, vpn uint64, frame []byte)
	// OnPageIn sees (and may mutate) the page image just read from swap.
	OnPageIn func(k *Kernel, p *Proc, vpn uint64, frame []byte)
	// OnSysRet runs after the syscall handler has written its return value
	// into kregs.GPR[0] but before the thread exits the kernel. Mutating
	// kregs.GPR[0] here forges the one register the VMM legitimately lets
	// flow back into a cloaked context — the Iago attack channel.
	OnSysRet func(k *Kernel, p *Proc, no Sysno, kregs *vmm.Regs)
	// OnIntrospect runs when the hypervisor-side introspection monitor asks
	// the kernel for its object state (run queues, region tables). Mutating
	// the claims models a rootkit-style kernel lying to the introspector:
	// hiding tasks, forging regions. The monitor compares whatever comes
	// back against VMM ground truth.
	OnIntrospect func(k *Kernel, claims *vmm.IntrospectClaims)

	// Leaked records that some hook observed cloaked plaintext. Attack
	// implementations set it; the harness asserts it stays false.
	Leaked bool
}
