package guestos

import (
	"errors"
	"fmt"

	"overshadow/internal/mach"
	"overshadow/internal/mmu"
	"overshadow/internal/obs"
	"overshadow/internal/sim"
	"overshadow/internal/vmm"
)

// execReplace is the panic sentinel that unwinds a process body when exec
// replaces the program image.
type execReplace struct{}

// UserCtx is the kernel's native implementation of Env: the environment of
// an uncloaked process, and the raw substrate the shim builds on for
// cloaked ones.
type UserCtx struct {
	p *Proc
	k *Kernel
}

var _ Env = (*UserCtx)(nil)

// Proc exposes the process (the shim needs the address space and thread).
func (c *UserCtx) Proc() *Proc { return c.p }

// Kernel exposes the kernel (the shim issues hypercalls via k.VMM()).
func (c *UserCtx) Kernel() *Kernel { return c.k }

// Thread exposes the VMM thread context (the shim binds it to a domain).
func (c *UserCtx) Thread() *vmm.Thread { return c.p.thread }

// Pid implements Env.
func (c *UserCtx) Pid() Pid { return c.p.pid }

// PPid implements Env.
func (c *UserCtx) PPid() Pid { return c.p.ppid }

// Cloaked implements Env.
func (c *UserCtx) Cloaked() bool { return c.p.cloaked }

// Args implements Env.
func (c *UserCtx) Args() []string { return c.p.args }

// Time implements Env.
func (c *UserCtx) Time() sim.Cycles { return c.k.world.Now() }

// Compute implements Env: burn simulated cycles in user mode.
func (c *UserCtx) Compute(units uint64) {
	k := c.k
	k.world.CPU().ChargeAdd(sim.Cycles(units)*k.world.Cost.ComputeUnit, sim.CtrCompute, 0)
	k.reapKilledAtSafePoint(c.p)
	if k.world.Now()-c.p.sliceStart >= k.cfg.Quantum {
		c.timerInterrupt()
	}
}

// timerInterrupt models the asynchronous timer: a full trap (with register
// scrubbing for cloaked threads) followed by a scheduling decision.
func (c *UserCtx) timerInterrupt() {
	p, k := c.p, c.k
	p.thread.EnterKernel(vmm.TrapInterrupt)
	k.vmm.SwitchContext(p.as, vmm.ViewSystem)
	k.maybePreempt(p)
	if err := p.thread.ExitKernel(); err != nil {
		var sv *vmm.SecViolation
		if errors.As(err, &sv) {
			k.exitCurrent(p, 128+int(SIGKILL))
		}
	}
	k.vmm.SwitchContext(p.as, vmm.ViewApp)
	k.runPendingHandlers(p)
}

// --- User-mode memory access ------------------------------------------------

// access performs a fault-handled memory access in the application view.
func (c *UserCtx) access(va mach.Addr, buf []byte, write bool) {
	p, k := c.p, c.k
	for {
		var err error
		if write {
			err = k.vmm.WriteVirt(p.as, vmm.ViewApp, va, buf, true)
		} else {
			err = k.vmm.ReadVirt(p.as, vmm.ViewApp, va, buf, true)
		}
		if err == nil {
			return
		}
		var fault *mmu.Fault
		if errors.As(err, &fault) {
			// Page fault: trap to the kernel to service it.
			sp := k.world.CPU().Begin(obs.KindPageFault, "app", uint64(va))
			p.thread.EnterKernel(vmm.TrapFault)
			k.vmm.SwitchContext(p.as, vmm.ViewSystem)
			errno := k.handleFault(p, fault)
			xerr := p.thread.ExitKernel()
			k.vmm.SwitchContext(p.as, vmm.ViewApp)
			sp.End()
			if xerr != nil {
				k.exitCurrent(p, 128+int(SIGKILL))
			}
			if errno != OK {
				// Genuine segfault.
				k.exitCurrent(p, 128+11)
			}
			// Trap exit is a quiescent point: the fault is fully serviced
			// and the access has not yet retried. No-op unless a migration
			// hook is armed and due.
			k.fireMigrationHook()
			continue
		}
		var sv *vmm.SecViolation
		if errors.As(err, &sv) {
			// The VMM refused the access: the OS corrupted this process's
			// protected memory (or the domain is already quarantined).
			// Terminate; the event is in the audit log.
			k.exitCurrent(p, 128+int(SIGKILL))
		}
		var rf *vmm.ResourceFault
		if errors.As(err, &rf) {
			// Unservable resource fault (e.g. a guest PTE pointing beyond
			// guest memory): the bus-error analogue. Kill the process;
			// the machine keeps running.
			k.exitCurrent(p, 128+11)
		}
		panic(fmt.Sprintf("guestos: unexpected access error: %v", err))
	}
}

// ReadMem implements Env.
func (c *UserCtx) ReadMem(va mach.Addr, buf []byte) { c.access(va, buf, false) }

// WriteMem implements Env.
func (c *UserCtx) WriteMem(va mach.Addr, buf []byte) { c.access(va, buf, true) }

// Load64 implements Env.
func (c *UserCtx) Load64(va mach.Addr) uint64 {
	var b [8]byte
	c.access(va, b[:], false)
	var v uint64
	for i := 7; i >= 0; i-- {
		v = v<<8 | uint64(b[i])
	}
	return v
}

// Store64 implements Env.
func (c *UserCtx) Store64(va mach.Addr, val uint64) {
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(val >> (8 * i))
	}
	c.access(va, b[:], true)
}

// --- The trap path ------------------------------------------------------------

// trap performs one complete syscall round trip: registers loaded, secure
// control transfer in, kernel handler, secure control transfer out,
// preemption check, signal delivery. handler reads its arguments from the
// (possibly scrubbed) kernel-visible registers.
func (c *UserCtx) trap(no Sysno, args [5]uint64, handler func(kregs *vmm.Regs) uint64) uint64 {
	p, k := c.p, c.k
	k.reapKilledAtSafePoint(p)
	p.thread.Regs.GPR[0] = uint64(no)
	copy(p.thread.Regs.GPR[1:], args[:])
	sp := k.world.CPU().Begin(obs.KindSyscall, no.String(), uint64(p.pid))
	kregs := p.thread.EnterKernel(vmm.TrapSyscall)
	k.world.CPU().ChargeAdd(0, sim.CtrSyscall, 1)
	k.vmm.SwitchContext(p.as, vmm.ViewSystem)
	if k.Adversary.OnSyscall != nil {
		k.Adversary.OnSyscall(k, p, Sysno(kregs.GPR[0]), kregs)
	}
	ret := handler(kregs)
	kregs.GPR[0] = ret
	if k.Adversary.OnSysRet != nil {
		// Iago window: the handler is done, the return value sits in the one
		// register ExitKernel lets flow back. A malicious kernel forges it
		// here; the shim's validation layer must catch the lie.
		k.Adversary.OnSysRet(k, p, no, kregs)
	}
	if err := p.thread.ExitKernel(); err != nil {
		var sv *vmm.SecViolation
		if !errors.As(err, &sv) {
			panic(err)
		}
		if sv.Event.Kind == vmm.EventQuarantine {
			// The domain was quarantined mid-syscall; the CTC is revoked
			// and the thread may never resume. Fatal for the process only.
			k.exitCurrent(p, 128+int(SIGKILL))
		}
		// CTC tamper: logged by the VMM; the thread resumed with genuine
		// state, so execution continues safely.
	}
	k.vmm.SwitchContext(p.as, vmm.ViewApp)
	sp.End()
	k.maybePreempt(p)
	k.runPendingHandlers(p)
	return p.thread.Regs.GPR[0]
}

// call wraps trap for the common value-or-errno pattern.
func (c *UserCtx) call(no Sysno, args [5]uint64, handler func(kregs *vmm.Regs) uint64) (uint64, Errno) {
	return DecodeRet(c.trap(no, args, handler))
}

// --- Kernel-side user buffer helpers -----------------------------------------

// copyIn copies from user memory (system view) into a kernel buffer,
// servicing demand faults. For cloaked pages this reads ciphertext — which
// is exactly why unmarshalled syscalls on cloaked buffers return garbage
// and the shim must interpose.
func (k *Kernel) copyIn(p *Proc, va mach.Addr, buf []byte) Errno {
	return k.sysAccess(p, va, buf, false)
}

// copyOut copies a kernel buffer into user memory (system view).
func (k *Kernel) copyOut(p *Proc, va mach.Addr, buf []byte) Errno {
	return k.sysAccess(p, va, buf, true)
}

func (k *Kernel) sysAccess(p *Proc, va mach.Addr, buf []byte, write bool) Errno {
	for {
		var err error
		if write {
			err = k.vmm.WriteVirt(p.as, vmm.ViewSystem, va, buf, false)
		} else {
			err = k.vmm.ReadVirt(p.as, vmm.ViewSystem, va, buf, false)
		}
		if err == nil {
			return OK
		}
		var fault *mmu.Fault
		if errors.As(err, &fault) {
			if errno := k.handleFault(p, fault); errno != OK {
				return EFAULT
			}
			continue
		}
		var rf *vmm.ResourceFault
		if errors.As(err, &rf) {
			// Corrupt guest PTE behind this buffer: the kernel treats the
			// access like a wild pointer.
			return EFAULT
		}
		// Security violations cannot happen in the system view (the kernel
		// always gets *some* view); anything else is a simulator bug.
		panic(fmt.Sprintf("guestos: unexpected copy error: %v", err))
	}
}

// --- Signal delivery ----------------------------------------------------------

func (k *Kernel) runPendingHandlers(p *Proc) {
	if p.inHandler {
		return
	}
	for len(p.sigPending) > 0 {
		sig := p.sigPending[0]
		p.sigPending = p.sigPending[1:]
		h, ok := p.sigHandlers[sig]
		if !ok {
			switch sig {
			case SIGTERM:
				k.exitCurrent(p, 128+int(sig))
			default:
				// Default action for the rest: ignore.
			}
			continue
		}
		p.inHandler = true
		h(p.userCtx, sig)
		p.inHandler = false
	}
}
