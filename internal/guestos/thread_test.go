package guestos

import (
	"testing"

	"overshadow/internal/mach"
)

func TestThreadSharesMemory(t *testing.T) {
	k, _ := newTestKernel(t, 256)
	runOne(t, k, func(e Env) {
		base, _ := e.Alloc(1)
		tid, err := e.SpawnThread(func(te Env) {
			te.Store64(base, 12345)
		})
		if err != nil {
			t.Errorf("spawn: %v", err)
			e.Exit(1)
		}
		if err := e.JoinThread(tid); err != nil {
			t.Errorf("join: %v", err)
		}
		if got := e.Load64(base); got != 12345 {
			t.Errorf("thread write not visible: %d", got)
		}
		e.Exit(0)
	})
}

func TestThreadsInterleave(t *testing.T) {
	k, _ := newTestKernel(t, 256)
	runOne(t, k, func(e Env) {
		base, _ := e.Alloc(1)
		const perThread = 50
		var tids []Pid
		for i := 0; i < 3; i++ {
			tid, err := e.SpawnThread(func(te Env) {
				for j := 0; j < perThread; j++ {
					v := te.Load64(base)
					te.Store64(base, v+1)
					te.Yield()
				}
			})
			if err != nil {
				t.Errorf("spawn %d: %v", i, err)
				e.Exit(1)
			}
			tids = append(tids, tid)
		}
		for _, tid := range tids {
			if err := e.JoinThread(tid); err != nil {
				t.Errorf("join %d: %v", tid, err)
			}
		}
		if got := e.Load64(base); got != 3*perThread {
			t.Errorf("counter = %d, want %d", got, 3*perThread)
		}
		e.Exit(0)
	})
}

func TestThreadSharesFDs(t *testing.T) {
	k, _ := newTestKernel(t, 256)
	runOne(t, k, func(e Env) {
		fd, _ := e.Open("/shared.txt", OCreate|ORdWr)
		buf, _ := e.Alloc(1)
		e.WriteMem(buf, []byte("from-thread"))
		tid, _ := e.SpawnThread(func(te Env) {
			te.Write(fd, buf, 11) // same descriptor table
		})
		e.JoinThread(tid)
		e.Lseek(fd, 0, SeekSet)
		out, _ := e.Alloc(1)
		n, _ := e.Read(fd, out, 32)
		got := make([]byte, n)
		e.ReadMem(out, got)
		if string(got) != "from-thread" {
			t.Errorf("got %q", got)
		}
		e.Exit(0)
	})
}

func TestExitKillsAllThreads(t *testing.T) {
	k, _ := newTestKernel(t, 256)
	sawAfter := false
	k.RegisterProgram("parent", func(e Env) {
		pid, _ := e.Fork(func(c Env) {
			c.SpawnThread(func(te Env) {
				te.Sleep(100_000)
				te.Exit(9) // any thread may exit the whole process
				sawAfter = true
			})
			for { // the leader spins until the thread's Exit kills it
				c.Compute(10_000)
			}
		})
		_, status, err := e.WaitPid(pid)
		if err != nil {
			t.Errorf("wait: %v", err)
		}
		if status != 9 {
			t.Errorf("status = %d, want 9", status)
		}
		e.Exit(0)
	})
	if _, err := k.Spawn("parent", SpawnOpts{}); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if sawAfter {
		t.Fatal("code after Exit ran")
	}
}

func TestExitThreadOnlyEndsCaller(t *testing.T) {
	k, _ := newTestKernel(t, 256)
	runOne(t, k, func(e Env) {
		base, _ := e.Alloc(1)
		tid, _ := e.SpawnThread(func(te Env) {
			te.Store64(base, 1)
			te.ExitThread()
			te.Store64(base, 2) // unreachable
		})
		e.JoinThread(tid)
		if got := e.Load64(base); got != 1 {
			t.Errorf("value = %d, want 1", got)
		}
		e.Exit(0)
	})
}

func TestJoinUnknownThread(t *testing.T) {
	k, _ := newTestKernel(t, 256)
	runOne(t, k, func(e Env) {
		if err := e.JoinThread(999); err != ESRCH {
			t.Errorf("join ghost: %v", err)
		}
		e.Exit(0)
	})
}

func TestSIGKILLTerminatesThreadGroup(t *testing.T) {
	k, _ := newTestKernel(t, 256)
	runOne(t, k, func(e Env) {
		pid, _ := e.Fork(func(c Env) {
			for i := 0; i < 3; i++ {
				c.SpawnThread(func(te Env) {
					for {
						te.Compute(5_000)
					}
				})
			}
			for {
				c.Compute(5_000)
			}
		})
		e.Sleep(2_000_000)
		if err := e.Kill(pid, SIGKILL); err != nil {
			t.Errorf("kill: %v", err)
		}
		_, status, err := e.WaitPid(pid)
		if err != nil {
			t.Errorf("wait: %v", err)
		}
		if status != 128+int(SIGKILL) {
			t.Errorf("status = %d", status)
		}
		e.Exit(0)
	})
}

func TestForkFromThreadCopiesProcess(t *testing.T) {
	k, _ := newTestKernel(t, 512)
	runOne(t, k, func(e Env) {
		base, _ := e.Alloc(1)
		e.Store64(base, 42)
		tid, _ := e.SpawnThread(func(te Env) {
			pid, err := te.Fork(func(ce Env) {
				// The child is single-threaded with a copy of memory.
				if ce.Load64(base) != 42 {
					ce.Exit(1)
				}
				ce.Exit(0)
			})
			if err != nil {
				t.Errorf("fork from thread: %v", err)
				return
			}
			_, status, _ := te.WaitPid(pid)
			if status != 0 {
				t.Errorf("child status %d", status)
			}
		})
		e.JoinThread(tid)
		e.Exit(0)
	})
}

func TestThreadBlockingIO(t *testing.T) {
	k, _ := newTestKernel(t, 256)
	runOne(t, k, func(e Env) {
		rfd, wfd, _ := e.Pipe()
		buf, _ := e.Alloc(1)
		got := make([]byte, 5)
		tid, _ := e.SpawnThread(func(te Env) {
			// Blocks until the main thread writes.
			tb, _ := te.Alloc(1)
			n, err := te.Read(rfd, tb, 5)
			if err != nil || n != 5 {
				t.Errorf("thread read = %d,%v", n, err)
				return
			}
			te.ReadMem(tb, got)
		})
		e.Sleep(500_000)
		e.WriteMem(buf, []byte("hello"))
		e.Write(wfd, buf, 5)
		e.JoinThread(tid)
		if string(got) != "hello" {
			t.Errorf("got %q", got)
		}
		e.Exit(0)
	})
}

func TestThreadsSeeSbrkGrowth(t *testing.T) {
	k, _ := newTestKernel(t, 256)
	runOne(t, k, func(e Env) {
		tid, _ := e.SpawnThread(func(te Env) {
			// The thread grows the heap; the leader uses it.
			te.Sbrk(2)
		})
		e.JoinThread(tid)
		va := mach.Addr(LayoutHeapBase * mach.PageSize)
		e.Store64(va, 5)
		if e.Load64(va) != 5 {
			t.Error("heap grown by thread unusable by leader")
		}
		e.Exit(0)
	})
}
