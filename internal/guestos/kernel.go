package guestos

import (
	"fmt"

	"overshadow/internal/mach"
	"overshadow/internal/obs"
	"overshadow/internal/sim"
	"overshadow/internal/vmm"
)

// Pid identifies a guest process.
type Pid int

// Program is a guest application body. Programs operate on simulated memory
// and syscalls exclusively through the Env they are given; for cloaked
// processes the Env is the shim's, for native processes the kernel's.
type Program func(Env)

// CloakRuntime is injected by the integration layer (package core) to wrap
// cloaked program bodies with the shim. guestos cannot import the shim
// directly (the shim builds on guestos), so the dependency is inverted.
type CloakRuntime func(uc *UserCtx, body Program)

// Config sizes and parameterizes the guest kernel.
type Config struct {
	MemoryPages int        // guest-physical memory size
	SwapPages   uint64     // swap device capacity
	FSDiskPages uint64     // filesystem device capacity
	Quantum     sim.Cycles // scheduler time slice (0 = default 400k cycles)
	MaxFDs      int        // per-process fd table size (0 = 64)
	// SwapDisk, when non-nil, is a pre-built swap device (possibly larger
	// than SwapPages; the pager uses only the first SwapPages blocks). The
	// embedding host uses this to co-locate the VMM's metadata journal on
	// the swap device and to hand a crash-surviving disk to a rebooted
	// machine.
	SwapDisk *mach.Disk
}

// Kernel is the guest operating system instance.
type Kernel struct {
	world *sim.World
	vmm   *vmm.VMM
	cfg   Config

	fs   *FS
	swap *swapSpace
	mem  *gppnAllocator

	// pageBuf is the kernel's page-sized scratch buffer for swap/file/COW
	// transfers; see scratchPage for the reuse argument.
	pageBuf []byte

	procs   map[Pid]*Proc
	nextPid Pid
	// cpus is the per-vCPU scheduler state (one run queue each); current is
	// the task holding the machine-wide baton. Tasks are placed round-robin
	// at creation (nextCPU) and migrate between queues only through
	// rebalance(). schedRNG drives the seeded interleaving choice among
	// non-empty queues; it is consumed only on multi-vCPU machines, so
	// single-vCPU schedules are byte-identical to the pre-SMP kernel.
	cpus     []*kcpu
	nextCPU  int
	schedRNG *sim.RNG
	current  *Proc
	sleepers []*sleeper
	resident []residentPage // global page-replacement candidate list
	handSeq  int

	shm          map[string]*ShmObj
	programs     map[string]Program
	cloakRuntime CloakRuntime

	Adversary Adversary

	liveProcs int
	running   bool
	crashed   bool // a sim.Crash deadline fired; machine stopped mid-flight
	done      chan struct{}
	panicked  any // first panic escaping a process goroutine, re-raised in Run

	// migrateAt/migrateFn are the one-shot live-migration hook (see
	// SetMigrationHook); fired from fireMigrationHook at the machine's
	// quiescent points.
	migrateAt sim.Cycles
	migrateFn func()
}

// NewKernel boots a guest kernel over a fresh VMM-managed machine.
func NewKernel(world *sim.World, hv *vmm.VMM, cfg Config) *Kernel {
	if cfg.MemoryPages <= 0 || cfg.MemoryPages > hv.GuestPages() {
		panic("guestos: MemoryPages must fit in guest-physical memory")
	}
	if cfg.Quantum == 0 {
		cfg.Quantum = 400_000
	}
	if cfg.MaxFDs == 0 {
		cfg.MaxFDs = 64
	}
	if cfg.SwapPages == 0 {
		cfg.SwapPages = 4096
	}
	if cfg.FSDiskPages == 0 {
		cfg.FSDiskPages = 8192
	}
	k := &Kernel{
		world:    world,
		vmm:      hv,
		cfg:      cfg,
		pageBuf:  make([]byte, mach.PageSize),
		procs:    make(map[Pid]*Proc),
		shm:      make(map[string]*ShmObj),
		programs: make(map[string]Program),
		done:     make(chan struct{}),
		schedRNG: world.DeriveRNG(0x5C4ED), // scheduler interleaving stream
	}
	k.cpus = make([]*kcpu, world.NumVCPUs())
	for i, c := range world.VCPUs() {
		k.cpus[i] = &kcpu{cpu: c}
	}
	k.mem = newGPPNAllocator(cfg.MemoryPages)
	k.swap = newSwapSpace(world, cfg.SwapPages, cfg.SwapDisk)
	k.fs = NewFS(world, cfg.FSDiskPages)
	return k
}

// World returns the simulation services.
func (k *Kernel) World() *sim.World { return k.world }

// VMM returns the hypervisor underneath (tests and the trusted shim use it;
// the kernel itself treats it as hardware).
func (k *Kernel) VMM() *vmm.VMM { return k.vmm }

// FS returns the filesystem, usable before Run to populate files.
func (k *Kernel) FS() *FS { return k.fs }

// SwapDisk exposes the swap block device (read-only use: adversarial tests
// and the E13 leak scan sweep it for plaintext residue).
func (k *Kernel) SwapDisk() *mach.Disk { return k.swap.disk }

// Lookup finds a live (non-reaped) task by pid.
func (k *Kernel) Lookup(pid Pid) (*Proc, bool) {
	p, ok := k.procs[pid]
	return p, ok
}

// SetCloakRuntime installs the shim wrapper used for cloaked processes.
func (k *Kernel) SetCloakRuntime(rt CloakRuntime) { k.cloakRuntime = rt }

// RegisterProgram makes a program spawnable and exec-able by name.
func (k *Kernel) RegisterProgram(name string, body Program) {
	k.programs[name] = body
}

// SpawnOpts controls process creation.
type SpawnOpts struct {
	Cloaked bool
	Args    []string
}

// Spawn creates a process that will run the named program when the kernel
// runs. It may be called before Run (initial workload) or from within
// syscalls (via fork/exec).
func (k *Kernel) Spawn(name string, opts SpawnOpts) (Pid, error) {
	body, ok := k.programs[name]
	if !ok {
		return 0, fmt.Errorf("guestos: no program %q", name)
	}
	if opts.Cloaked && k.cloakRuntime == nil {
		return 0, fmt.Errorf("guestos: cloaked spawn without a cloak runtime")
	}
	p := k.newProc(0, opts.Cloaked, name, opts.Args)
	runner := k.programRunner(p, body)
	k.startProcGoroutine(p, runner)
	k.makeRunnable(p)
	return p.pid, nil
}

// programRunner wraps a program body with the appropriate runtime (shim for
// cloaked processes) and a final implicit exit.
func (k *Kernel) programRunner(p *Proc, body Program) func(*UserCtx) {
	return func(uc *UserCtx) {
		if p.cloaked {
			k.cloakRuntime(uc, body)
		} else {
			body(uc)
		}
		// Falling off the end of the program is an implicit exit(0).
		k.exitCurrent(p, 0)
	}
}

// Run executes the machine until every process has exited. It must be
// called exactly once, after at least one Spawn.
func (k *Kernel) Run() {
	if k.running {
		panic("guestos: Run called twice")
	}
	k.running = true
	if k.runnable() == 0 {
		return
	}
	first := k.pickNext()
	k.current = first
	k.dispatchAttr(first)
	first.baton <- struct{}{}
	<-k.done
	if k.panicked != nil {
		if sim.IsCrash(k.panicked) {
			// Whole-machine crash: the world stopped at an exact cycle. This
			// is a deliberate simulation event, not a bug — the machine
			// simply ends with its disks frozen as-is. Parked process
			// goroutines stay blocked on their batons until the Kernel is
			// garbage collected; nothing ever sends to them again.
			k.crashed = true
			k.panicked = nil
			return
		}
		panic(k.panicked)
	}
}

// Crashed reports whether the machine stopped via a crash deadline
// (sim.Clock.SetCrashAt) rather than by all processes exiting.
func (k *Kernel) Crashed() bool { return k.crashed }

// --- Scheduler -----------------------------------------------------------

// kcpu is one vCPU's scheduler state: a FIFO run queue of tasks homed on
// that CPU. Execution stays globally serialized by the baton; the queues
// decide which vCPU context the next task runs in.
type kcpu struct {
	cpu  *sim.VCPU
	runq []*Proc
}

type sleeper struct {
	p    *Proc
	wake sim.Cycles
}

// placeCPU assigns a newly created task its home CPU, round-robin. Always 0
// on a single-vCPU machine.
func (k *Kernel) placeCPU() int {
	ci := k.nextCPU % len(k.cpus)
	k.nextCPU++
	return ci
}

func (k *Kernel) makeRunnable(p *Proc) {
	p.state = stateRunnable
	kc := k.cpus[p.home]
	kc.runq = append(kc.runq, p)
}

// runnable reports the total number of queued tasks across all CPUs.
func (k *Kernel) runnable() int {
	n := 0
	for _, kc := range k.cpus {
		n += len(kc.runq)
	}
	return n
}

func (k *Kernel) dequeueFrom(ci int) *Proc {
	kc := k.cpus[ci]
	p := kc.runq[0]
	kc.runq = kc.runq[1:]
	return p
}

// rebalance migrates one queued task from the longest run queue (length ≥ 2,
// lowest index on ties) to the lowest-index idle CPU (empty queue), keeping
// all CPUs busy when work is available. Each migration re-homes the task —
// its next dispatch runs on the new vCPU, refilling that CPU's TLB and
// shadow state — and counts under CtrMigration. Never runs on a single-vCPU
// machine.
func (k *Kernel) rebalance() {
	if len(k.cpus) == 1 {
		return
	}
	for {
		longest, idle := -1, -1
		for i, kc := range k.cpus {
			if len(kc.runq) == 0 && idle == -1 {
				idle = i
			}
			if len(kc.runq) >= 2 && (longest == -1 || len(kc.runq) > len(k.cpus[longest].runq)) {
				longest = i
			}
		}
		if longest == -1 || idle == -1 {
			return
		}
		src := k.cpus[longest]
		p := src.runq[len(src.runq)-1]
		src.runq = src.runq[:len(src.runq)-1]
		p.home = idle
		k.cpus[idle].runq = append(k.cpus[idle].runq, p)
		c := k.world.CPU()
		c.ChargeAdd(0, sim.CtrMigration, 1)
		c.Emit(obs.KindProc, "migrate", uint64(p.pid))
	}
}

// chooseCPU picks which CPU's queue head runs next. With one candidate the
// choice is forced; with several, the seeded scheduler stream picks among
// them — the deterministic interleaving schedule. The stream is consumed
// only when a real choice exists, so single-vCPU machines never touch it.
func (k *Kernel) chooseCPU() int {
	if len(k.cpus) == 1 {
		return 0
	}
	first := -1
	n := 0
	for i, kc := range k.cpus {
		if len(kc.runq) > 0 {
			if first == -1 {
				first = i
			}
			n++
		}
	}
	if n <= 1 {
		return first
	}
	pick := k.schedRNG.Intn(n)
	for i, kc := range k.cpus {
		if len(kc.runq) > 0 {
			if pick == 0 {
				return i
			}
			pick--
		}
	}
	return first
}

// wakeDueSleepers moves every sleeper whose deadline has passed onto the
// run queue. Called at scheduling points so a compute-bound process cannot
// starve timed waiters while the clock advances.
func (k *Kernel) wakeDueSleepers() {
	now := k.world.Now()
	kept := k.sleepers[:0]
	for _, s := range k.sleepers {
		if s.wake <= now {
			k.makeRunnable(s.p)
		} else {
			kept = append(kept, s)
		}
	}
	k.sleepers = kept
}

// SetMigrationHook arms a one-shot host callback that fires the first time
// the simulated clock reaches `at` at a quiescent point — a scheduler
// dispatch boundary, the preemption safe point, or a page-fault trap exit.
// At every such point no task goroutine is mid-syscall and every thread's
// execution context is parked or saved in its trap frame, so a checkpoint
// taken inside fn sees a quiescent machine. The hook is disarmed before it
// runs; fn may
// re-arm by calling SetMigrationHook again (the replay-adversary experiment
// captures twice this way). When fn returns, scheduling simply continues:
// the source machine is unharmed whether or not fn transferred anything.
func (k *Kernel) SetMigrationHook(at sim.Cycles, fn func()) {
	k.migrateAt = at
	k.migrateFn = fn
}

// fireMigrationHook runs the armed migration hook if the clock has reached
// its deadline. Called from the machine's quiescent points — scheduler
// dispatch, the preemption safe point, and page-fault trap exit — so a
// busy single-process machine still reaches the hook promptly. A no-op
// (and zero behavioral change) while no hook is armed.
func (k *Kernel) fireMigrationHook() {
	if k.migrateFn == nil || k.world.Now() < k.migrateAt {
		return
	}
	fn := k.migrateFn
	k.migrateFn = nil
	fn()
}

// pickNext chooses the next runnable process, advancing simulated time over
// idle periods. Returns nil when no process can ever run again.
func (k *Kernel) pickNext() *Proc {
	k.fireMigrationHook()
	k.wakeDueSleepers()
	for {
		if k.runnable() > 0 {
			k.rebalance()
			return k.dequeueFrom(k.chooseCPU())
		}
		if len(k.sleepers) == 0 {
			if k.liveProcs > 0 {
				panic("guestos: deadlock — live processes but nothing runnable")
			}
			return nil
		}
		// Advance the clock to the earliest wake time.
		earliest := 0
		for i, s := range k.sleepers {
			if s.wake < k.sleepers[earliest].wake {
				earliest = i
			}
		}
		s := k.sleepers[earliest]
		//overlint:allow hotpathalloc -- removal by append into the same backing array; never grows
		k.sleepers = append(k.sleepers[:earliest], k.sleepers[earliest+1:]...)
		if s.wake > k.world.Now() {
			// Idle: no task holds a CPU while the clock advances; the idle
			// cycles bill to the due sleeper's home vCPU.
			c := k.world.VCPUs()[s.p.home]
			k.world.Activate(c)
			c.SetTask(0, 0, "", 0, false)
			c.ChargeAdd(s.wake-k.world.Now(), sim.CtrIdle, 0)
		}
		k.makeRunnable(s.p)
	}
}

// switchTo hands the CPU from the current process to next. The caller's
// goroutine must currently hold the baton. If park is true the caller is
// suspended until rescheduled; otherwise (exit) the caller's goroutine
// simply returns.
func (k *Kernel) switchTo(next *Proc, cur *Proc, park bool) {
	// Dispatch happens in the target's execution context: the target's home
	// vCPU becomes the machine's executing CPU and pays the switch cost.
	c := k.world.VCPUs()[next.home]
	k.world.Activate(c)
	c.ChargeCount(k.world.Cost.ContextSwitch, sim.CtrContextSwitch)
	c.EmitSpan(obs.KindCtxSwitch, "switch", uint64(next.pid), k.world.Cost.ContextSwitch)
	k.dispatchAttr(next)
	k.current = next
	next.sliceStart = k.world.Now()
	next.state = stateRunning
	next.baton <- struct{}{}
	if park {
		<-cur.baton
		k.current = cur
	}
}

// yield gives up the CPU: requeue and reschedule. No-op if nothing else is
// runnable.
func (k *Kernel) yield(p *Proc) {
	if k.runnable() == 0 && len(k.sleepers) == 0 {
		p.sliceStart = k.world.Now()
		return
	}
	k.makeRunnable(p)
	next := k.pickNext()
	if next == p {
		p.state = stateRunning
		p.sliceStart = k.world.Now()
		k.dispatchAttr(p)
		return
	}
	k.switchTo(next, p, true)
	if p.killed {
		k.exitCurrent(p, 128+int(SIGKILL))
	}
}

// block suspends p until something calls wake(p). The blocking reason is
// recorded for diagnostics.
func (k *Kernel) block(p *Proc, why string) {
	p.state = stateBlocked
	p.blockedOn = why
	next := k.pickNext()
	if next == nil {
		panic("guestos: blocking with no other runnable process")
	}
	k.switchTo(next, p, true)
	p.blockedOn = ""
	if p.killed {
		// Terminated while blocked: unwind out of the syscall.
		k.exitCurrent(p, 128+int(SIGKILL))
	}
}

// wake marks a blocked process runnable again.
func (k *Kernel) wake(p *Proc) {
	if p.state == stateBlocked {
		k.makeRunnable(p)
	}
}

// sleepUntil suspends p until the clock reaches wake.
func (k *Kernel) sleepUntil(p *Proc, wakeAt sim.Cycles) {
	p.state = stateBlocked
	p.blockedOn = "sleep"
	k.sleepers = append(k.sleepers, &sleeper{p: p, wake: wakeAt})
	next := k.pickNext()
	if next == p {
		p.state = stateRunning
		k.dispatchAttr(p)
		return
	}
	k.switchTo(next, p, true)
	p.blockedOn = ""
	if p.killed {
		k.exitCurrent(p, 128+int(SIGKILL))
	}
}

// maybePreempt ends the time slice if the quantum expired. Called from
// safe points (syscall exit, compute loops).
func (k *Kernel) maybePreempt(p *Proc) {
	k.fireMigrationHook()
	if k.world.Now()-p.sliceStart < k.cfg.Quantum {
		return
	}
	k.wakeDueSleepers()
	if k.runnable() == 0 {
		p.sliceStart = k.world.Now()
		return
	}
	k.yield(p)
}

// dispatchAttr points cycle and span attribution at p on p's home vCPU; the
// scheduler calls it at every point where p (re)takes a simulated CPU.
func (k *Kernel) dispatchAttr(p *Proc) {
	c := k.world.VCPUs()[p.home]
	k.world.Activate(c)
	c.SetTask(int(p.procShared.leader.pid), int(p.pid), p.name, uint32(p.thread.Domain), p.cloaked)
}
