// Package guestos implements the commodity guest operating system that runs
// on top of the simulated machine and under the Overshadow VMM. It is a
// deliberately conventional kernel — processes, a round-robin scheduler,
// demand-paged virtual memory with swap, a block filesystem, pipes, and
// signals — because the paper's whole premise is that the OS is large,
// unmodified, and *untrusted*: it manages the resources of cloaked
// applications without being able to read or corrupt them.
//
// Nothing in this package is in the trusted computing base. The adversary
// hooks (see Adversary) let tests and experiments turn the kernel actively
// malicious.
package guestos

import "fmt"

// Errno is the guest kernel's error number space (a compact POSIX subset).
type Errno int

// Errno values.
const (
	OK      Errno = 0
	EPERM   Errno = 1
	ENOENT  Errno = 2
	ESRCH   Errno = 3
	EINTR   Errno = 4
	EIO     Errno = 5
	EBADF   Errno = 9
	ECHILD  Errno = 10
	EAGAIN  Errno = 11
	ENOMEM  Errno = 12
	EACCES  Errno = 13
	EFAULT  Errno = 14
	EEXIST  Errno = 17
	ENOTDIR Errno = 20
	EISDIR  Errno = 21
	EINVAL  Errno = 22
	ENFILE  Errno = 23
	EMFILE  Errno = 24
	ENOSPC  Errno = 28
	ESPIPE  Errno = 29
	EPIPE   Errno = 32
	ENOSYS  Errno = 38
	ENOTSUP Errno = 95
)

var errnoNames = map[Errno]string{
	OK: "OK", EPERM: "EPERM", ENOENT: "ENOENT", ESRCH: "ESRCH",
	EINTR: "EINTR", EIO: "EIO", EBADF: "EBADF", ECHILD: "ECHILD",
	EAGAIN: "EAGAIN", ENOMEM: "ENOMEM", EACCES: "EACCES", EFAULT: "EFAULT",
	EEXIST: "EEXIST", ENOTDIR: "ENOTDIR", EISDIR: "EISDIR", EINVAL: "EINVAL",
	ENFILE: "ENFILE", EMFILE: "EMFILE", ENOSPC: "ENOSPC", ESPIPE: "ESPIPE",
	EPIPE: "EPIPE", ENOSYS: "ENOSYS", ENOTSUP: "ENOTSUP",
}

// Error implements the error interface so Errno values can be returned
// directly from the user-facing API.
func (e Errno) Error() string {
	if s, ok := errnoNames[e]; ok {
		return s
	}
	return fmt.Sprintf("errno(%d)", int(e))
}

// KnownErrno reports whether e names one of the kernel's defined error
// numbers (or OK). The shim's validation layer uses it to reject forged
// errno values that name no real failure.
func KnownErrno(e Errno) bool {
	_, ok := errnoNames[e]
	return ok
}

// The syscall return-register encoding mirrors Linux: values in
// [-4095, -1] (two's complement) are negated errnos.
const maxErrno = 4095

func encodeRet(val uint64, err Errno) uint64 {
	if err != OK {
		return uint64(-int64(err))
	}
	return val
}

// DecodeRet splits a raw syscall return register into value and errno.
func DecodeRet(ret uint64) (uint64, Errno) {
	if v := int64(ret); v < 0 && v >= -maxErrno {
		return 0, Errno(-v)
	}
	return ret, OK
}
