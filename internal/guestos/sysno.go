package guestos

// Sysno numbers the guest system calls.
type Sysno uint64

// System call numbers. The set mirrors the slice of POSIX the paper's
// microbenchmarks exercise (lmbench-style) plus what the workloads need.
const (
	SysExit Sysno = iota + 1
	SysGetPid
	SysGetPPid
	SysYield
	SysNanoSleep
	SysTime
	SysFork
	SysExec
	SysWaitPid
	SysKill
	SysSignal // install a handler
	SysSigReturn

	SysBrk
	SysMmap
	SysMunmap
	SysMsync

	SysOpen
	SysClose
	SysRead
	SysWrite
	SysPread
	SysPwrite
	SysLseek
	SysStat
	SysFstat
	SysUnlink
	SysMkdir
	SysDup
	SysPipe
	SysFsync
	SysTruncate
	SysGetDirEntries

	SysThreadCreate
	SysThreadJoin
	SysThreadExit

	SysShmAttach

	SysNull // does nothing; the lmbench "null syscall"
)

var sysnoNames = map[Sysno]string{
	SysExit: "exit", SysGetPid: "getpid", SysGetPPid: "getppid",
	SysYield: "yield", SysNanoSleep: "nanosleep", SysTime: "time",
	SysFork: "fork", SysExec: "exec", SysWaitPid: "waitpid",
	SysKill: "kill", SysSignal: "signal", SysSigReturn: "sigreturn",
	SysBrk: "brk", SysMmap: "mmap", SysMunmap: "munmap", SysMsync: "msync",
	SysOpen: "open", SysClose: "close", SysRead: "read", SysWrite: "write",
	SysPread: "pread", SysPwrite: "pwrite", SysLseek: "lseek",
	SysStat: "stat", SysFstat: "fstat", SysUnlink: "unlink",
	SysMkdir: "mkdir", SysDup: "dup", SysPipe: "pipe", SysFsync: "fsync",
	SysTruncate: "truncate", SysGetDirEntries: "getdirentries",
	SysThreadCreate: "thread_create", SysThreadJoin: "thread_join",
	SysThreadExit: "thread_exit", SysShmAttach: "shm_attach",
	SysNull: "null",
}

// String implements fmt.Stringer.
func (s Sysno) String() string {
	if n, ok := sysnoNames[s]; ok {
		return n
	}
	return "sys?"
}

// Open flags.
const (
	ORdOnly = 0x0
	OWrOnly = 0x1
	ORdWr   = 0x2
	OCreate = 0x40
	OTrunc  = 0x200
	OAppend = 0x400
)

// Lseek whence values.
const (
	SeekSet = 0
	SeekCur = 1
	SeekEnd = 2
)

// Signal numbers.
type Signal int

// Signals.
const (
	SIGKILL Signal = 9
	SIGUSR1 Signal = 10
	SIGUSR2 Signal = 12
	SIGTERM Signal = 15
)
