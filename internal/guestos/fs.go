package guestos

import (
	"sort"
	"strings"

	"overshadow/internal/mach"
	"overshadow/internal/sim"
)

// Ino is an inode number.
type Ino uint64

// FileType distinguishes inode kinds.
type FileType uint8

// Inode kinds.
const (
	TypeFile FileType = iota
	TypeDir
)

// StatInfo is what stat/fstat report.
type StatInfo struct {
	Ino   Ino
	Type  FileType
	Size  uint64
	Pages uint64
}

type inode struct {
	ino      Ino
	typ      FileType
	size     uint64
	blocks   []uint64       // one disk block per file page
	children map[string]Ino // directories
	nlink    int
}

// FS is a simple block filesystem: a tree of directories, files whose pages
// live on the simulated disk, a free-block list, and a small write-through
// block cache so hot files do not pay disk latency on every access.
type FS struct {
	world     *sim.World
	disk      *mach.Disk
	inodes    map[Ino]*inode
	nextIno   Ino
	freeBlk   []uint64
	cache     map[uint64][]byte
	cacheCap  int
	cacheKeys []uint64
	// scratch is the page-sized staging buffer for byte-granular ReadAt/
	// WriteAt; every loop iteration fully refills it (ReadFilePage reads a
	// whole block or zero-fills past EOF, and the full-page write path
	// overwrites all of it), and the baton scheduler admits one goroutine,
	// so reuse cannot leak stale bytes between calls.
	scratch []byte
}

// NewFS formats a filesystem over a fresh disk with the given capacity.
func NewFS(world *sim.World, diskPages uint64) *FS {
	fs := &FS{
		world:    world,
		disk:     mach.NewDisk(world, diskPages),
		inodes:   make(map[Ino]*inode),
		nextIno:  1,
		cache:    make(map[uint64][]byte),
		cacheCap: 128,
		scratch:  make([]byte, mach.PageSize),
	}
	for i := int64(diskPages) - 1; i >= 0; i-- {
		fs.freeBlk = append(fs.freeBlk, uint64(i))
	}
	root := &inode{ino: 1, typ: TypeDir, children: make(map[string]Ino), nlink: 1}
	fs.inodes[1] = root
	fs.nextIno = 2
	return fs
}

// Disk exposes the filesystem's block device (read-only use: adversarial
// tests and the E13 leak scan sweep it for plaintext residue).
func (fs *FS) Disk() *mach.Disk { return fs.disk }

func (fs *FS) allocBlock() (uint64, Errno) {
	if len(fs.freeBlk) == 0 {
		return 0, ENOSPC
	}
	b := fs.freeBlk[len(fs.freeBlk)-1]
	fs.freeBlk = fs.freeBlk[:len(fs.freeBlk)-1]
	return b, OK
}

func (fs *FS) freeBlock(b uint64) {
	delete(fs.cache, b)
	fs.freeBlk = append(fs.freeBlk, b)
}

// --- Path resolution --------------------------------------------------------

func splitPath(path string) []string {
	var out []string
	for _, part := range strings.Split(path, "/") {
		if part != "" && part != "." {
			out = append(out, part)
		}
	}
	return out
}

// lookup resolves a path to an inode.
func (fs *FS) lookup(path string) (*inode, Errno) {
	cur := fs.inodes[1]
	for _, part := range splitPath(path) {
		if cur.typ != TypeDir {
			return nil, ENOTDIR
		}
		ci, ok := cur.children[part]
		if !ok {
			return nil, ENOENT
		}
		cur = fs.inodes[ci]
	}
	return cur, OK
}

// lookupParent resolves the directory containing the path's final element.
func (fs *FS) lookupParent(path string) (*inode, string, Errno) {
	parts := splitPath(path)
	if len(parts) == 0 {
		return nil, "", EINVAL
	}
	dirParts, name := parts[:len(parts)-1], parts[len(parts)-1]
	cur := fs.inodes[1]
	for _, part := range dirParts {
		if cur.typ != TypeDir {
			return nil, "", ENOTDIR
		}
		ci, ok := cur.children[part]
		if !ok {
			return nil, "", ENOENT
		}
		cur = fs.inodes[ci]
	}
	if cur.typ != TypeDir {
		return nil, "", ENOTDIR
	}
	return cur, name, OK
}

// --- Namespace operations -----------------------------------------------------

// Create makes a new regular file (truncating an existing one when trunc).
func (fs *FS) Create(path string, trunc bool) (Ino, Errno) {
	dir, name, err := fs.lookupParent(path)
	if err != OK {
		return 0, err
	}
	if existing, ok := dir.children[name]; ok {
		ino := fs.inodes[existing]
		if ino.typ == TypeDir {
			return 0, EISDIR
		}
		if trunc {
			fs.truncate(ino, 0)
		}
		return existing, OK
	}
	ino := &inode{ino: fs.nextIno, typ: TypeFile, nlink: 1}
	fs.nextIno++
	fs.inodes[ino.ino] = ino
	dir.children[name] = ino.ino
	return ino.ino, OK
}

// Mkdir creates a directory.
func (fs *FS) Mkdir(path string) Errno {
	dir, name, err := fs.lookupParent(path)
	if err != OK {
		return err
	}
	if _, ok := dir.children[name]; ok {
		return EEXIST
	}
	ino := &inode{ino: fs.nextIno, typ: TypeDir, children: make(map[string]Ino), nlink: 1}
	fs.nextIno++
	fs.inodes[ino.ino] = ino
	dir.children[name] = ino.ino
	return OK
}

// Unlink removes a file (directories must be empty).
func (fs *FS) Unlink(path string) Errno {
	dir, name, err := fs.lookupParent(path)
	if err != OK {
		return err
	}
	ci, ok := dir.children[name]
	if !ok {
		return ENOENT
	}
	ino := fs.inodes[ci]
	if ino.typ == TypeDir && len(ino.children) > 0 {
		return ENOTSUP
	}
	delete(dir.children, name)
	ino.nlink--
	if ino.nlink == 0 {
		fs.truncate(ino, 0)
		delete(fs.inodes, ci)
	}
	return OK
}

// Stat reports file metadata.
func (fs *FS) Stat(path string) (StatInfo, Errno) {
	ino, err := fs.lookup(path)
	if err != OK {
		return StatInfo{}, err
	}
	return fs.statInode(ino), OK
}

// StatIno reports metadata by inode number.
func (fs *FS) StatIno(i Ino) (StatInfo, Errno) {
	ino, ok := fs.inodes[i]
	if !ok {
		return StatInfo{}, ENOENT
	}
	return fs.statInode(ino), OK
}

func (fs *FS) statInode(ino *inode) StatInfo {
	return StatInfo{Ino: ino.ino, Type: ino.typ, Size: ino.size,
		Pages: uint64(len(ino.blocks))}
}

// ReadDir lists a directory's entries sorted by name.
func (fs *FS) ReadDir(path string) ([]string, Errno) {
	ino, err := fs.lookup(path)
	if err != OK {
		return nil, err
	}
	if ino.typ != TypeDir {
		return nil, ENOTDIR
	}
	names := make([]string, 0, len(ino.children))
	for n := range ino.children {
		names = append(names, n)
	}
	sort.Strings(names)
	return names, OK
}

// --- Data operations ----------------------------------------------------------

func (fs *FS) blockRead(blk uint64, dst []byte) Errno {
	if b, ok := fs.cache[blk]; ok {
		copy(dst, b)
		fs.world.CPU().ChargeAdd(fs.world.Cost.MemAccess*sim.Cycles(mach.PageSize/64), sim.CtrMemAccess, mach.PageSize/64)
		return OK
	}
	if err := fs.disk.Read(blk, dst); err != nil {
		return EIO
	}
	fs.cacheInsert(blk, dst)
	return OK
}

func (fs *FS) blockWrite(blk uint64, src []byte) Errno {
	if err := fs.disk.Write(blk, src); err != nil {
		return EIO
	}
	fs.cacheInsert(blk, src)
	return OK
}

func (fs *FS) cacheInsert(blk uint64, data []byte) {
	// Updating a resident block reuses its buffer; inserting at capacity
	// recycles the evicted victim's. Only a cold insert below capacity
	// allocates, so the cache stops allocating once warm.
	b, ok := fs.cache[blk]
	if !ok {
		if len(fs.cache) >= fs.cacheCap {
			victim := fs.cacheKeys[0]
			fs.cacheKeys = fs.cacheKeys[1:]
			b = fs.cache[victim]
			delete(fs.cache, victim)
		}
		fs.cacheKeys = append(fs.cacheKeys, blk)
	}
	if b == nil {
		//overlint:allow hotpathalloc -- cold cache fill, bounded by cacheCap
		b = make([]byte, mach.PageSize)
	}
	copy(b, data)
	fs.cache[blk] = b
}

// ensurePage makes sure the file has a block for page idx, growing as
// needed. Newly attached blocks are zeroed: the allocator recycles blocks
// from deleted files, and holes must never expose stale contents.
func (fs *FS) ensurePage(ino *inode, idx uint64) (uint64, Errno) {
	var zero [mach.PageSize]byte
	for uint64(len(ino.blocks)) <= idx {
		b, err := fs.allocBlock()
		if err != OK {
			return 0, err
		}
		if err := fs.blockWrite(b, zero[:]); err != OK {
			fs.freeBlock(b)
			return 0, err
		}
		ino.blocks = append(ino.blocks, b)
	}
	return ino.blocks[idx], OK
}

// ReadFilePage reads one whole page of a file into dst (zero-filled past
// EOF).
func (fs *FS) ReadFilePage(i Ino, idx uint64, dst []byte) Errno {
	ino, ok := fs.inodes[i]
	if !ok {
		return ENOENT
	}
	if idx >= uint64(len(ino.blocks)) {
		for j := range dst {
			dst[j] = 0
		}
		return OK
	}
	return fs.blockRead(ino.blocks[idx], dst)
}

// WriteFilePage writes one whole page, growing the file.
func (fs *FS) WriteFilePage(i Ino, idx uint64, src []byte) Errno {
	ino, ok := fs.inodes[i]
	if !ok {
		return ENOENT
	}
	blk, err := fs.ensurePage(ino, idx)
	if err != OK {
		return err
	}
	if end := (idx + 1) * mach.PageSize; end > ino.size {
		ino.size = end
	}
	return fs.blockWrite(blk, src)
}

// ReadAt implements byte-granularity reads, returning the count read
// (0 at EOF).
func (fs *FS) ReadAt(i Ino, off uint64, dst []byte) (int, Errno) {
	ino, ok := fs.inodes[i]
	if !ok {
		return 0, ENOENT
	}
	if ino.typ == TypeDir {
		return 0, EISDIR
	}
	if off >= ino.size {
		return 0, OK
	}
	n := len(dst)
	if rem := ino.size - off; uint64(n) > rem {
		n = int(rem)
	}
	done := 0
	page := fs.scratch
	for done < n {
		idx := (off + uint64(done)) / mach.PageSize
		pgOff := int((off + uint64(done)) % mach.PageSize)
		chunk := mach.PageSize - pgOff
		if chunk > n-done {
			chunk = n - done
		}
		if err := fs.ReadFilePage(i, idx, page); err != OK {
			return done, err
		}
		copy(dst[done:done+chunk], page[pgOff:pgOff+chunk])
		done += chunk
	}
	return n, OK
}

// WriteAt implements byte-granularity writes with read-modify-write of
// partial pages.
func (fs *FS) WriteAt(i Ino, off uint64, src []byte) (int, Errno) {
	ino, ok := fs.inodes[i]
	if !ok {
		return 0, ENOENT
	}
	if ino.typ == TypeDir {
		return 0, EISDIR
	}
	done := 0
	page := fs.scratch
	for done < len(src) {
		idx := (off + uint64(done)) / mach.PageSize
		pgOff := int((off + uint64(done)) % mach.PageSize)
		chunk := mach.PageSize - pgOff
		if chunk > len(src)-done {
			chunk = len(src) - done
		}
		if pgOff != 0 || chunk != mach.PageSize {
			if err := fs.ReadFilePage(i, idx, page); err != OK {
				return done, err
			}
		}
		copy(page[pgOff:pgOff+chunk], src[done:done+chunk])
		blk, err := fs.ensurePage(ino, idx)
		if err != OK {
			return done, err
		}
		if err := fs.blockWrite(blk, page); err != OK {
			return done, err
		}
		done += chunk
	}
	if end := off + uint64(len(src)); end > ino.size {
		ino.size = end
	}
	return done, OK
}

// truncate resizes a file downward (only shrink-to-zero and grow are used).
func (fs *FS) truncate(ino *inode, size uint64) {
	if size == 0 {
		for _, b := range ino.blocks {
			fs.freeBlock(b)
		}
		ino.blocks = nil
		ino.size = 0
		return
	}
	ino.size = size
}

// Truncate resizes a file by path.
func (fs *FS) Truncate(path string, size uint64) Errno {
	ino, err := fs.lookup(path)
	if err != OK {
		return err
	}
	if ino.typ != TypeFile {
		return EISDIR
	}
	fs.truncate(ino, size)
	return OK
}

// WriteFile is a host-side convenience to populate the filesystem before
// the guest runs (workload inputs, web content).
func (fs *FS) WriteFile(path string, data []byte) Errno {
	i, err := fs.Create(path, true)
	if err != OK {
		return err
	}
	_, err = fs.WriteAt(i, 0, data)
	return err
}

// ReadFile is the host-side read counterpart (tests, verification).
func (fs *FS) ReadFile(path string) ([]byte, Errno) {
	ino, err := fs.lookup(path)
	if err != OK {
		return nil, err
	}
	out := make([]byte, ino.size)
	_, err = fs.ReadAt(ino.ino, 0, out)
	return out, err
}
