package guestos

import (
	"overshadow/internal/mach"
	"overshadow/internal/sim"
)

// Env is the programming interface guest applications are written against.
// Workloads take an Env so the same program body can run natively (the
// kernel's UserCtx) or cloaked (the shim's environment, which marshals
// buffers and manages protected memory). All addresses refer to the
// process's simulated virtual address space.
type Env interface {
	// Identity and time.
	Pid() Pid
	PPid() Pid
	Cloaked() bool
	Args() []string
	Time() sim.Cycles

	// Computation: advances simulated time by units of abstract work and
	// honors preemption.
	Compute(units uint64)

	// Memory. ReadMem/WriteMem operate on the process's own view (cloaked
	// pages appear as plaintext to their owner). Alloc maps fresh anonymous
	// pages; Sbrk moves the heap break.
	ReadMem(va mach.Addr, buf []byte)
	WriteMem(va mach.Addr, buf []byte)
	Load64(va mach.Addr) uint64
	Store64(va mach.Addr, val uint64)
	Alloc(pages int) (mach.Addr, error)
	Free(base mach.Addr) error
	Sbrk(deltaPages int64) (mach.Addr, error)
	// ShmAttach maps the named shared-memory object (created on first
	// attach) of exactly `pages` pages. Cloaked processes attaching the
	// same name share one protected view: plaintext for all of them,
	// ciphertext for the kernel. Detach with Free(base).
	ShmAttach(name string, pages int) (mach.Addr, error)

	// Files and pipes. Read/Write move data between the file and the
	// process's memory at va.
	Open(path string, flags int) (int, error)
	Close(fd int) error
	Read(fd int, va mach.Addr, n int) (int, error)
	Write(fd int, va mach.Addr, n int) (int, error)
	Pread(fd int, va mach.Addr, n int, off uint64) (int, error)
	Pwrite(fd int, va mach.Addr, n int, off uint64) (int, error)
	Lseek(fd int, off int64, whence int) (uint64, error)
	Stat(path string) (StatInfo, error)
	Fstat(fd int) (StatInfo, error)
	Unlink(path string) error
	Mkdir(path string) error
	Dup(fd int) (int, error)
	Pipe() (rfd, wfd int, err error)
	Truncate(path string, size uint64) error
	ReadDir(path string) ([]string, error)
	Fsync(fd int) error

	// Threads: SpawnThread starts a new thread sharing this process's
	// address space (its own registers and, cloaked, its own CTC);
	// JoinThread waits for it; ExitThread ends only the calling thread.
	SpawnThread(body func(Env)) (Pid, error)
	JoinThread(tid Pid) error
	ExitThread()

	// Process control. Fork runs child in a copy of this process (Go
	// cannot snapshot a goroutine, so the child body is explicit; memory,
	// descriptors, and identity are copied).
	Fork(child func(Env)) (Pid, error)
	Exec(name string, args []string) error
	WaitPid(pid Pid) (Pid, int, error)
	Exit(status int)
	Kill(pid Pid, sig Signal) error
	Signal(sig Signal, h SigHandler) error
	Sleep(cycles uint64)
	Yield()

	// Null issues the do-nothing syscall (the lmbench "null call").
	Null()
}

// errOrNil converts an Errno to error, mapping OK to nil (a non-nil
// interface holding OK would read as an error).
func errOrNil(e Errno) error {
	if e == OK {
		return nil
	}
	return e
}
