package guestos

import (
	"overshadow/internal/mach"
	"overshadow/internal/sim"
	"overshadow/internal/vmm"
)

// This file implements the Env surface of UserCtx. Every operation is a
// genuine trap through the secure-control-transfer path: numeric arguments
// travel through (scrubbed) registers; path strings ride alongside in the
// handler closure, standing in for a pointer to a NUL-terminated string
// (their bytes are charged like a copyin).

func (k *Kernel) chargePathCopy(path string) {
	k.world.CPU().ChargeAdd(sim.Cycles(1+len(path)/cachelineBytes)*k.world.Cost.MemAccess, sim.CtrMemAccess, uint64(1+len(path)/cachelineBytes))
}

const cachelineBytes = 64

// Null implements Env: the lmbench null syscall.
func (c *UserCtx) Null() {
	c.trap(SysNull, [5]uint64{}, func(*vmm.Regs) uint64 { return 0 })
}

// Exit implements Env.
func (c *UserCtx) Exit(status int) {
	c.trap(SysExit, [5]uint64{uint64(status)}, func(kregs *vmm.Regs) uint64 {
		c.k.exitCurrent(c.p, int(int64(kregs.GPR[1])))
		return 0 // unreachable
	})
}

// Yield implements Env.
func (c *UserCtx) Yield() {
	c.trap(SysYield, [5]uint64{}, func(*vmm.Regs) uint64 {
		c.k.yield(c.p)
		return 0
	})
}

// Sleep implements Env.
func (c *UserCtx) Sleep(cycles uint64) {
	c.trap(SysNanoSleep, [5]uint64{cycles}, func(kregs *vmm.Regs) uint64 {
		k := c.k
		k.sleepUntil(c.p, k.world.Now()+sim.Cycles(kregs.GPR[1]))
		return 0
	})
}

// Sbrk implements Env.
func (c *UserCtx) Sbrk(deltaPages int64) (mach.Addr, error) {
	v, e := c.call(SysBrk, [5]uint64{uint64(deltaPages)}, func(kregs *vmm.Regs) uint64 {
		old, errno := c.k.sbrk(c.p, int64(kregs.GPR[1]))
		return encodeRet(old*mach.PageSize, errno)
	})
	return mach.Addr(v), errOrNil(e)
}

// Alloc implements Env (anonymous mmap).
func (c *UserCtx) Alloc(pages int) (mach.Addr, error) {
	v, e := c.call(SysMmap, [5]uint64{uint64(pages)}, func(kregs *vmm.Regs) uint64 {
		base, errno := c.k.mmapAnon(c.p, kregs.GPR[1], true)
		return encodeRet(base*mach.PageSize, errno)
	})
	return mach.Addr(v), errOrNil(e)
}

// MmapFile maps pages of an open file at a kernel-chosen address. Not part
// of Env (the shim and tests use it directly for cloaked file windows).
func (c *UserCtx) MmapFile(fd int, fileOffPages, pages uint64, writable bool) (mach.Addr, error) {
	v, e := c.call(SysMmap, [5]uint64{pages, uint64(fd), fileOffPages, 1}, func(kregs *vmm.Regs) uint64 {
		f, errno := c.p.fd(int(kregs.GPR[2]))
		if errno != OK {
			return encodeRet(0, errno)
		}
		if f.pipe != nil {
			return encodeRet(0, ESPIPE)
		}
		base, errno := c.k.mmapFile(c.p, kregs.GPR[1], f.ino, kregs.GPR[3], writable)
		return encodeRet(base*mach.PageSize, errno)
	})
	return mach.Addr(v), errOrNil(e)
}

// ShmAttach implements Env: attach (creating on first use) the named
// shared-memory object of the given size, returning the mapped base.
func (c *UserCtx) ShmAttach(name string, pages int) (mach.Addr, error) {
	v, e := c.call(SysShmAttach, [5]uint64{uint64(pages)}, func(kregs *vmm.Regs) uint64 {
		c.k.chargePathCopy(name)
		base, errno := c.k.shmAttach(c.p, name, kregs.GPR[1])
		return encodeRet(base*mach.PageSize, errno)
	})
	return mach.Addr(v), errOrNil(e)
}

// Free implements Env (munmap).
func (c *UserCtx) Free(base mach.Addr) error {
	_, e := c.call(SysMunmap, [5]uint64{uint64(base)}, func(kregs *vmm.Regs) uint64 {
		return encodeRet(0, c.k.munmap(c.p, mach.PageOf(mach.Addr(kregs.GPR[1]))))
	})
	return errOrNil(e)
}

// Msync flushes dirty pages of a file mapping. Not part of Env; used by the
// shim's cloaked-I/O layer.
func (c *UserCtx) Msync(base mach.Addr) error {
	_, e := c.call(SysMsync, [5]uint64{uint64(base)}, func(kregs *vmm.Regs) uint64 {
		return encodeRet(0, c.k.msync(c.p, mach.PageOf(mach.Addr(kregs.GPR[1]))))
	})
	return errOrNil(e)
}

// --- Files ---------------------------------------------------------------

// Open implements Env.
func (c *UserCtx) Open(path string, flags int) (int, error) {
	v, e := c.call(SysOpen, [5]uint64{uint64(flags)}, func(kregs *vmm.Regs) uint64 {
		c.k.chargePathCopy(path)
		fd, errno := c.k.openFD(c.p, path, int(kregs.GPR[1]))
		return encodeRet(uint64(fd), errno)
	})
	return int(v), errOrNil(e)
}

// Close implements Env.
func (c *UserCtx) Close(fd int) error {
	_, e := c.call(SysClose, [5]uint64{uint64(fd)}, func(kregs *vmm.Regs) uint64 {
		return encodeRet(0, c.k.closeFD(c.p, int(kregs.GPR[1])))
	})
	return errOrNil(e)
}

// Read implements Env: read from fd into user memory at va.
func (c *UserCtx) Read(fd int, va mach.Addr, n int) (int, error) {
	v, e := c.call(SysRead, [5]uint64{uint64(fd), uint64(va), uint64(n)}, func(kregs *vmm.Regs) uint64 {
		k, p := c.k, c.p
		buf := make([]byte, kregs.GPR[3])
		got, errno := k.readFD(p, int(kregs.GPR[1]), buf)
		if errno != OK {
			return encodeRet(0, errno)
		}
		if errno := k.copyOut(p, mach.Addr(kregs.GPR[2]), buf[:got]); errno != OK {
			return encodeRet(0, errno)
		}
		return encodeRet(uint64(got), OK)
	})
	return int(v), errOrNil(e)
}

// Write implements Env: write user memory at va to fd.
func (c *UserCtx) Write(fd int, va mach.Addr, n int) (int, error) {
	v, e := c.call(SysWrite, [5]uint64{uint64(fd), uint64(va), uint64(n)}, func(kregs *vmm.Regs) uint64 {
		k, p := c.k, c.p
		buf := make([]byte, kregs.GPR[3])
		if errno := k.copyIn(p, mach.Addr(kregs.GPR[2]), buf); errno != OK {
			return encodeRet(0, errno)
		}
		if k.Adversary.OnWriteData != nil {
			k.Adversary.OnWriteData(k, p, int(kregs.GPR[1]), buf)
		}
		got, errno := k.writeFD(p, int(kregs.GPR[1]), buf)
		return encodeRet(uint64(got), errno)
	})
	return int(v), errOrNil(e)
}

// Pread implements Env.
func (c *UserCtx) Pread(fd int, va mach.Addr, n int, off uint64) (int, error) {
	v, e := c.call(SysPread, [5]uint64{uint64(fd), uint64(va), uint64(n), off}, func(kregs *vmm.Regs) uint64 {
		k, p := c.k, c.p
		buf := make([]byte, kregs.GPR[3])
		got, errno := k.preadFD(p, int(kregs.GPR[1]), kregs.GPR[4], buf)
		if errno != OK {
			return encodeRet(0, errno)
		}
		if errno := k.copyOut(p, mach.Addr(kregs.GPR[2]), buf[:got]); errno != OK {
			return encodeRet(0, errno)
		}
		return encodeRet(uint64(got), OK)
	})
	return int(v), errOrNil(e)
}

// Pwrite implements Env.
func (c *UserCtx) Pwrite(fd int, va mach.Addr, n int, off uint64) (int, error) {
	v, e := c.call(SysPwrite, [5]uint64{uint64(fd), uint64(va), uint64(n), off}, func(kregs *vmm.Regs) uint64 {
		k, p := c.k, c.p
		buf := make([]byte, kregs.GPR[3])
		if errno := k.copyIn(p, mach.Addr(kregs.GPR[2]), buf); errno != OK {
			return encodeRet(0, errno)
		}
		got, errno := k.pwriteFD(p, int(kregs.GPR[1]), kregs.GPR[4], buf)
		return encodeRet(uint64(got), errno)
	})
	return int(v), errOrNil(e)
}

// Lseek implements Env.
func (c *UserCtx) Lseek(fd int, off int64, whence int) (uint64, error) {
	v, e := c.call(SysLseek, [5]uint64{uint64(fd), uint64(off), uint64(whence)}, func(kregs *vmm.Regs) uint64 {
		pos, errno := c.k.lseekFD(c.p, int(kregs.GPR[1]), int64(kregs.GPR[2]), int(kregs.GPR[3]))
		return encodeRet(pos, errno)
	})
	return v, errOrNil(e)
}

// Stat implements Env. The StatInfo is returned through a closure slot,
// standing in for a user-memory struct pointer.
func (c *UserCtx) Stat(path string) (StatInfo, error) {
	var out StatInfo
	_, e := c.call(SysStat, [5]uint64{}, func(*vmm.Regs) uint64 {
		c.k.chargePathCopy(path)
		st, errno := c.k.fs.Stat(path)
		out = st
		return encodeRet(0, errno)
	})
	return out, errOrNil(e)
}

// Fstat implements Env.
func (c *UserCtx) Fstat(fd int) (StatInfo, error) {
	var out StatInfo
	_, e := c.call(SysFstat, [5]uint64{uint64(fd)}, func(kregs *vmm.Regs) uint64 {
		f, errno := c.p.fd(int(kregs.GPR[1]))
		if errno != OK {
			return encodeRet(0, errno)
		}
		if f.pipe != nil {
			return encodeRet(0, ESPIPE)
		}
		st, errno := c.k.fs.StatIno(f.ino)
		out = st
		return encodeRet(0, errno)
	})
	return out, errOrNil(e)
}

// Unlink implements Env.
func (c *UserCtx) Unlink(path string) error {
	_, e := c.call(SysUnlink, [5]uint64{}, func(*vmm.Regs) uint64 {
		c.k.chargePathCopy(path)
		return encodeRet(0, c.k.fs.Unlink(path))
	})
	return errOrNil(e)
}

// Mkdir implements Env.
func (c *UserCtx) Mkdir(path string) error {
	_, e := c.call(SysMkdir, [5]uint64{}, func(*vmm.Regs) uint64 {
		c.k.chargePathCopy(path)
		return encodeRet(0, c.k.fs.Mkdir(path))
	})
	return errOrNil(e)
}

// Truncate implements Env.
func (c *UserCtx) Truncate(path string, size uint64) error {
	_, e := c.call(SysTruncate, [5]uint64{size}, func(kregs *vmm.Regs) uint64 {
		c.k.chargePathCopy(path)
		return encodeRet(0, c.k.fs.Truncate(path, kregs.GPR[1]))
	})
	return errOrNil(e)
}

// ReadDir implements Env: directory entries, sorted. The names return
// through the closure, standing in for a user dirent buffer.
func (c *UserCtx) ReadDir(path string) ([]string, error) {
	var names []string
	_, e := c.call(SysGetDirEntries, [5]uint64{}, func(*vmm.Regs) uint64 {
		c.k.chargePathCopy(path)
		ns, errno := c.k.fs.ReadDir(path)
		names = ns
		return encodeRet(uint64(len(ns)), errno)
	})
	return names, errOrNil(e)
}

// Fsync implements Env. The block filesystem writes through, so this is a
// semantic no-op that still pays the trap (the shim overrides it for
// cloaked files, where it flushes the mmap window).
func (c *UserCtx) Fsync(fd int) error {
	_, e := c.call(SysFsync, [5]uint64{uint64(fd)}, func(kregs *vmm.Regs) uint64 {
		_, errno := c.p.fd(int(kregs.GPR[1]))
		return encodeRet(0, errno)
	})
	return errOrNil(e)
}

// Dup implements Env.
func (c *UserCtx) Dup(fd int) (int, error) {
	v, e := c.call(SysDup, [5]uint64{uint64(fd)}, func(kregs *vmm.Regs) uint64 {
		nfd, errno := c.k.dupFD(c.p, int(kregs.GPR[1]))
		return encodeRet(uint64(nfd), errno)
	})
	return int(v), errOrNil(e)
}

// Pipe implements Env.
func (c *UserCtx) Pipe() (int, int, error) {
	var rfd, wfd int
	_, e := c.call(SysPipe, [5]uint64{}, func(*vmm.Regs) uint64 {
		r, w, errno := c.k.makePipe(c.p)
		rfd, wfd = r, w
		return encodeRet(0, errno)
	})
	return rfd, wfd, errOrNil(e)
}

// --- Process control --------------------------------------------------------

// Pid/PPid/Time syscall variants (the Env accessors read kernel state
// directly; these exist for the microbenchmarks that need the trap cost).

// SysGetPidCall performs the full getpid syscall.
func (c *UserCtx) SysGetPidCall() Pid {
	v := c.trap(SysGetPid, [5]uint64{}, func(*vmm.Regs) uint64 {
		return uint64(c.p.pid)
	})
	return Pid(v)
}

// Fork implements Env.
func (c *UserCtx) Fork(child func(Env)) (Pid, error) {
	return c.ForkWith(func(uc *UserCtx) { child(uc) }, nil)
}

// ForkWith is the raw fork used by the shim: childRunner receives the
// child's kernel context, onPrepared runs (in the parent, with the child
// built but not yet runnable) to let the shim re-cloak the child.
func (c *UserCtx) ForkWith(childRunner func(*UserCtx), onPrepared func(parent, child *vmm.AddressSpace) error) (Pid, error) {
	v, e := c.call(SysFork, [5]uint64{}, func(*vmm.Regs) uint64 {
		pid, errno := c.k.forkProc(c.p, childRunner, onPrepared)
		return encodeRet(uint64(pid), errno)
	})
	return Pid(v), errOrNil(e)
}

// Exec implements Env.
func (c *UserCtx) Exec(name string, args []string) error {
	_, e := c.call(SysExec, [5]uint64{}, func(*vmm.Regs) uint64 {
		c.k.chargePathCopy(name)
		return encodeRet(0, c.k.execProc(c.p, name, args))
	})
	if e != OK {
		return e
	}
	// The new image takes over this goroutine.
	panic(execReplace{})
}

// WaitPid implements Env. pid <= 0 waits for any child.
func (c *UserCtx) WaitPid(pid Pid) (Pid, int, error) {
	var status int
	v, e := c.call(SysWaitPid, [5]uint64{uint64(pid)}, func(kregs *vmm.Regs) uint64 {
		got, st, errno := c.k.waitPid(c.p, Pid(int64(kregs.GPR[1])))
		status = st
		return encodeRet(uint64(got), errno)
	})
	return Pid(v), status, errOrNil(e)
}

// Kill implements Env.
func (c *UserCtx) Kill(pid Pid, sig Signal) error {
	_, e := c.call(SysKill, [5]uint64{uint64(pid), uint64(sig)}, func(kregs *vmm.Regs) uint64 {
		return encodeRet(0, c.k.killProc(c.p, Pid(kregs.GPR[1]), Signal(kregs.GPR[2])))
	})
	return errOrNil(e)
}

// SpawnThread implements Env: start a new thread in this process sharing
// the whole address space. Each thread gets its own register context (and,
// cloaked, its own CTC in the VMM).
func (c *UserCtx) SpawnThread(body func(Env)) (Pid, error) {
	return c.SpawnThreadWith(func(uc *UserCtx) { body(uc) })
}

// SpawnThreadWith is the raw thread spawn used by the shim: the runner
// receives the new thread's kernel context so the shim can bind its CTC to
// the domain before running the body.
func (c *UserCtx) SpawnThreadWith(runner func(*UserCtx)) (Pid, error) {
	v, e := c.call(SysThreadCreate, [5]uint64{}, func(*vmm.Regs) uint64 {
		tid := c.k.createThread(c.p, runner)
		return encodeRet(uint64(tid), OK)
	})
	return Pid(v), errOrNil(e)
}

// JoinThread implements Env: wait for a sibling thread to exit.
func (c *UserCtx) JoinThread(tid Pid) error {
	_, e := c.call(SysThreadJoin, [5]uint64{uint64(tid)}, func(kregs *vmm.Regs) uint64 {
		return encodeRet(0, c.k.joinThread(c.p, Pid(kregs.GPR[1])))
	})
	return errOrNil(e)
}

// ExitThread implements Env: terminate only the calling thread. The last
// thread's exit completes the process with the recorded status (0 unless
// Exit set one).
func (c *UserCtx) ExitThread() {
	c.trap(SysThreadExit, [5]uint64{}, func(*vmm.Regs) uint64 {
		c.k.exitThread(c.p)
		return 0 // unreachable
	})
}

// Signal implements Env.
func (c *UserCtx) Signal(sig Signal, h SigHandler) error {
	_, e := c.call(SysSignal, [5]uint64{uint64(sig)}, func(kregs *vmm.Regs) uint64 {
		s := Signal(kregs.GPR[1])
		if s == SIGKILL {
			return encodeRet(0, EINVAL)
		}
		if h == nil {
			delete(c.p.sigHandlers, s)
		} else {
			c.p.sigHandlers[s] = h
		}
		return encodeRet(0, OK)
	})
	return errOrNil(e)
}
