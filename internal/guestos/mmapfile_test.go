package guestos

import (
	"bytes"
	"testing"

	"overshadow/internal/mach"
)

// Native file-backed mmap (the substrate under the shim's cloaked windows,
// tested here without cloaking).

func TestMmapFileReadThrough(t *testing.T) {
	k, _ := newTestKernel(t, 512)
	if err := k.FS().WriteFile("/data", bytes.Repeat([]byte("abcd"), 4096)); err != OK {
		t.Fatal(err)
	}
	runOne(t, k, func(e Env) {
		uc := e.(*UserCtx)
		fd, _ := e.Open("/data", ORdWr)
		base, err := uc.MmapFile(fd, 0, 4, true)
		if err != nil {
			t.Errorf("mmap: %v", err)
			e.Exit(1)
		}
		got := make([]byte, 8)
		e.ReadMem(base+mach.Addr(4096), got)
		if string(got) != "abcdabcd" {
			t.Errorf("mapped read %q", got)
		}
		e.Exit(0)
	})
}

func TestMmapFileWriteBackViaMsync(t *testing.T) {
	k, _ := newTestKernel(t, 512)
	if err := k.FS().WriteFile("/data", make([]byte, 2*4096)); err != OK {
		t.Fatal(err)
	}
	runOne(t, k, func(e Env) {
		uc := e.(*UserCtx)
		fd, _ := e.Open("/data", ORdWr)
		base, err := uc.MmapFile(fd, 0, 2, true)
		if err != nil {
			t.Errorf("mmap: %v", err)
			e.Exit(1)
		}
		e.WriteMem(base+100, []byte("persisted"))
		// Before msync the file is unchanged.
		data, _ := k.FS().ReadFile("/data")
		if bytes.Contains(data, []byte("persisted")) {
			t.Error("write visible before msync")
		}
		if err := uc.Msync(base); err != nil {
			t.Errorf("msync: %v", err)
		}
		data, _ = k.FS().ReadFile("/data")
		if !bytes.Contains(data, []byte("persisted")) {
			t.Error("msync did not write back")
		}
		// A second msync with nothing dirty is a no-op.
		if err := uc.Msync(base); err != nil {
			t.Errorf("msync 2: %v", err)
		}
		if err := uc.Msync(0x99999 * mach.PageSize); err != EINVAL {
			t.Errorf("msync of non-mapping: %v", err)
		}
		e.Exit(0)
	})
}

func TestMmapFileBadFD(t *testing.T) {
	k, _ := newTestKernel(t, 256)
	runOne(t, k, func(e Env) {
		uc := e.(*UserCtx)
		if _, err := uc.MmapFile(77, 0, 1, true); err != EBADF {
			t.Errorf("mmap bad fd: %v", err)
		}
		rfd, wfd, _ := e.Pipe()
		if _, err := uc.MmapFile(rfd, 0, 1, true); err != ESPIPE {
			t.Errorf("mmap pipe: %v", err)
		}
		e.Close(rfd)
		e.Close(wfd)
		e.Exit(0)
	})
}

func TestMmapFileCleanPageDropUnderPressure(t *testing.T) {
	// Clean file pages are dropped (not swapped) under pressure and
	// re-read from the file on demand.
	k, w := newTestKernel(t, 96)
	content := bytes.Repeat([]byte{0x5A}, 120*4096)
	if err := k.FS().WriteFile("/big", content); err != OK {
		t.Fatal(err)
	}
	runOne(t, k, func(e Env) {
		uc := e.(*UserCtx)
		fd, _ := e.Open("/big", ORdOnly)
		base, err := uc.MmapFile(fd, 0, 120, false)
		if err != nil {
			t.Errorf("mmap: %v", err)
			e.Exit(1)
		}
		// Two passes: the second re-reads dropped pages.
		for pass := 0; pass < 2; pass++ {
			for p := 0; p < 120; p++ {
				var b [1]byte
				e.ReadMem(base+mach.Addr(p*4096), b[:])
				if b[0] != 0x5A {
					t.Errorf("pass %d page %d corrupt: %x", pass, p, b[0])
					e.Exit(1)
				}
			}
		}
		e.Exit(0)
	})
	_ = w
}

func TestStringersAndAccessors(t *testing.T) {
	k, _ := newTestKernel(t, 128)
	if OK.Error() != "OK" || ENOENT.Error() != "ENOENT" {
		t.Error("errno strings")
	}
	if Errno(9999).Error() == "" {
		t.Error("unknown errno empty")
	}
	if SysNull.String() != "null" || Sysno(9999).String() != "sys?" {
		t.Error("sysno strings")
	}
	kinds := []VMAKind{VMAHeap, VMAStack, VMAAnon, VMAFile, VMAScratch, VMAShm, VMAKind(99)}
	for _, kd := range kinds {
		if kd.String() == "" {
			t.Errorf("empty VMA kind string for %d", kd)
		}
	}
	runOne(t, k, func(e Env) {
		uc := e.(*UserCtx)
		p := uc.Proc()
		if p.Pid() != e.Pid() || p.Name() != "main" || p.Cloaked() || p.IsThread() {
			t.Errorf("proc accessors: %v", p)
		}
		if p.String() == "" {
			t.Error("empty proc string")
		}
		if p.AddressSpace() == nil {
			t.Error("nil address space")
		}
		if uc.Kernel() != k || k.World() == nil || k.VMM() == nil {
			t.Error("kernel accessors")
		}
		if got, ok := k.Lookup(e.Pid()); !ok || got != p {
			t.Error("Lookup failed")
		}
		if _, ok := k.Lookup(9999); ok {
			t.Error("Lookup ghost")
		}
		e.Exit(0)
	})
}
