package guestos

import (
	"testing"

	"overshadow/internal/mach"
	"overshadow/internal/sim"
	"overshadow/internal/vmm"
)

// Failure-injection tests: the kernel must degrade with errno, never with
// corruption or a wedged scheduler.

func TestOOMWhenRAMAndSwapExhausted(t *testing.T) {
	w := sim.NewWorld(sim.DefaultCostModel(), 4)
	hv := mustVMM(t, w, vmm.Config{GuestPages: 64})
	k := NewKernel(w, hv, Config{MemoryPages: 64, SwapPages: 16})
	killed := false
	k.RegisterProgram("hog", func(e Env) {
		base, err := e.Alloc(512) // far beyond RAM+swap
		if err != nil {
			e.Exit(3) // allocation refused outright is acceptable too
		}
		for i := 0; i < 512; i++ {
			// Touching must eventually fail: the fault handler runs out of
			// frames and swap, and the process is killed (SIGSEGV-style).
			e.Store64(base+mach.Addr(i*mach.PageSize), uint64(i))
		}
		e.Exit(0)
	})
	k.RegisterProgram("parent", func(e Env) {
		pid, _ := e.Fork(func(c Env) {
			c.Exec("hog", nil)
		})
		_, status, _ := e.WaitPid(pid)
		if status != 0 {
			killed = true
		}
		e.Exit(0)
	})
	if _, err := k.Spawn("parent", SpawnOpts{}); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if !killed {
		t.Fatal("memory hog completed despite exhaustion")
	}
}

func TestFDTableExhaustion(t *testing.T) {
	w := sim.NewWorld(sim.DefaultCostModel(), 4)
	hv := mustVMM(t, w, vmm.Config{GuestPages: 256})
	k := NewKernel(w, hv, Config{MemoryPages: 256, MaxFDs: 8})
	runOne(t, k, func(e Env) {
		var fds []int
		for {
			fd, err := e.Open("/f", OCreate|ORdWr)
			if err != nil {
				if err != EMFILE {
					t.Errorf("want EMFILE, got %v", err)
				}
				break
			}
			fds = append(fds, fd)
			if len(fds) > 16 {
				t.Error("opened more fds than the table holds")
				break
			}
		}
		if len(fds) != 8 {
			t.Errorf("opened %d fds, want 8", len(fds))
		}
		// Closing one frees a slot.
		e.Close(fds[0])
		if _, err := e.Open("/f", ORdOnly); err != nil {
			t.Errorf("open after close: %v", err)
		}
		e.Exit(0)
	})
}

func TestGuestDiskFullSurfacesENOSPC(t *testing.T) {
	w := sim.NewWorld(sim.DefaultCostModel(), 4)
	hv := mustVMM(t, w, vmm.Config{GuestPages: 256})
	k := NewKernel(w, hv, Config{MemoryPages: 256, FSDiskPages: 8})
	runOne(t, k, func(e Env) {
		fd, _ := e.Open("/big", OCreate|OWrOnly)
		buf, _ := e.Alloc(1)
		wrote := 0
		for i := 0; i < 100; i++ {
			_, err := e.Write(fd, buf, 4096)
			if err != nil {
				if err != ENOSPC {
					t.Errorf("want ENOSPC, got %v", err)
				}
				break
			}
			wrote++
		}
		if wrote >= 100 {
			t.Error("disk never filled")
		}
		e.Exit(0)
	})
}

func TestSegfaultOnWildAccess(t *testing.T) {
	k, _ := newTestKernel(t, 256)
	k.RegisterProgram("parent", func(e Env) {
		pid, _ := e.Fork(func(c Env) {
			// Far outside every VMA.
			c.Store64(mach.Addr(0xC0000*mach.PageSize), 1)
			c.Exit(0) // unreachable
		})
		_, status, _ := e.WaitPid(pid)
		if status != 128+11 {
			t.Errorf("status = %d, want SIGSEGV-style %d", status, 128+11)
		}
		e.Exit(0)
	})
	k.Spawn("parent", SpawnOpts{})
	k.Run()
}

func TestWriteToReadOnlyMappingKills(t *testing.T) {
	k, _ := newTestKernel(t, 256)
	k.RegisterProgram("parent", func(e Env) {
		pid, _ := e.Fork(func(c Env) {
			uc := c.(*UserCtx)
			// Map a read-only anonymous region via the raw kernel call.
			base, errno := uc.k.mmapAnon(uc.p, 2, false)
			if errno != OK {
				c.Exit(4)
			}
			_ = c.Load64(mach.Addr(base * mach.PageSize)) // read OK
			c.Store64(mach.Addr(base*mach.PageSize), 1)   // write: EACCES
			c.Exit(0)
		})
		_, status, _ := e.WaitPid(pid)
		if status == 0 {
			t.Error("write to RO mapping succeeded")
		}
		e.Exit(0)
	})
	k.Spawn("parent", SpawnOpts{})
	k.Run()
}

func TestPipePropertyChunking(t *testing.T) {
	// Arbitrary write/read chunk sizes must preserve the byte stream.
	k, _ := newTestKernel(t, 512)
	rng := sim.NewRNG(77)
	const total = 64 * 1024
	src := make([]byte, total)
	rng.Bytes(src)
	var got []byte
	runOne(t, k, func(e Env) {
		rfd, wfd, _ := e.Pipe()
		pid, _ := e.Fork(func(c Env) {
			c.Close(rfd)
			buf, _ := c.Alloc(8)
			sent := 0
			for sent < total {
				n := rng.Intn(7000) + 1
				if n > total-sent {
					n = total - sent
				}
				c.WriteMem(buf, src[sent:sent+n])
				off := 0
				for off < n {
					m, err := c.Write(wfd, buf+mach.Addr(off), n-off)
					if err != nil {
						c.Exit(1)
					}
					off += m
				}
				sent += n
			}
			c.Close(wfd)
			c.Exit(0)
		})
		e.Close(wfd)
		buf, _ := e.Alloc(8)
		tmp := make([]byte, 8192)
		for {
			n := rng.Intn(8000) + 1
			m, err := e.Read(rfd, buf, n)
			if err != nil {
				t.Errorf("read: %v", err)
				break
			}
			if m == 0 {
				break
			}
			e.ReadMem(buf, tmp[:m])
			got = append(got, tmp[:m]...)
		}
		e.WaitPid(pid)
		e.Exit(0)
	})
	if len(got) != total {
		t.Fatalf("stream length %d, want %d", len(got), total)
	}
	for i := range got {
		if got[i] != src[i] {
			t.Fatalf("stream corrupted at byte %d", i)
		}
	}
}

func TestSwapExhaustionUnderCloaking(t *testing.T) {
	// Tiny swap + cloaked overcommit: the process must die cleanly, the
	// kernel must keep running, and no plaintext may linger anywhere.
	w := sim.NewWorld(sim.DefaultCostModel(), 4)
	hv := mustVMM(t, w, vmm.Config{GuestPages: 64})
	k := NewKernel(w, hv, Config{MemoryPages: 64, SwapPages: 8})
	ranAfter := false
	k.RegisterProgram("parent", func(e Env) {
		pid, _ := e.Fork(func(c Env) {
			base, err := c.Alloc(256)
			if err != nil {
				c.Exit(3)
			}
			for i := 0; i < 256; i++ {
				c.Store64(base+mach.Addr(i*mach.PageSize), uint64(i))
			}
			c.Exit(0)
		})
		_, status, _ := e.WaitPid(pid)
		if status == 0 {
			t.Error("overcommit succeeded with 8 swap pages")
		}
		ranAfter = true
		e.Exit(0)
	})
	k.Spawn("parent", SpawnOpts{})
	k.Run()
	if !ranAfter {
		t.Fatal("kernel wedged after OOM kill")
	}
}
