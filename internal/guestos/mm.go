package guestos

import (
	"overshadow/internal/fault"
	"overshadow/internal/mach"
	"overshadow/internal/mmu"
	"overshadow/internal/obs"
	"overshadow/internal/sim"
)

// VMAKind classifies virtual memory areas.
type VMAKind uint8

// VMA kinds.
const (
	VMAHeap VMAKind = iota
	VMAStack
	VMAAnon
	VMAFile
	VMAScratch // the shim's uncloaked marshalling window
	VMAShm     // named shared-memory object (see shm.go)
)

// String implements fmt.Stringer.
func (k VMAKind) String() string {
	switch k {
	case VMAHeap:
		return "heap"
	case VMAStack:
		return "stack"
	case VMAAnon:
		return "anon"
	case VMAFile:
		return "file"
	case VMAScratch:
		return "scratch"
	case VMAShm:
		return "shm"
	}
	return "?"
}

// VMA is one virtual memory area of a process.
type VMA struct {
	Base     uint64 // first VPN
	Pages    uint64
	Kind     VMAKind
	Writable bool
	// File mappings.
	Ino     Ino
	FileOff uint64 // page offset within the file
	// Shared-memory mappings.
	Shm *ShmObj
}

// Contains reports whether vpn lies inside the area.
func (v *VMA) Contains(vpn uint64) bool {
	return vpn >= v.Base && vpn < v.Base+v.Pages
}

func (p *Proc) vmaAt(vpn uint64) *VMA {
	for _, v := range p.vmas {
		if v.Contains(vpn) {
			return v
		}
	}
	return nil
}

// --- Guest-physical page accounting ---------------------------------------

// gppnAllocator manages guest-physical pages with sharing counts (COW).
type gppnAllocator struct {
	freeList []mach.GPPN
	refs     map[mach.GPPN]int
}

func newGPPNAllocator(pages int) *gppnAllocator {
	// GPPN 0 is reserved so a zero page number can mean "no page"
	// (shared-memory objects and other tables rely on this).
	a := &gppnAllocator{refs: make(map[mach.GPPN]int)}
	for i := pages - 1; i >= 1; i-- {
		a.freeList = append(a.freeList, mach.GPPN(i))
	}
	return a
}

func (a *gppnAllocator) alloc() (mach.GPPN, bool) {
	if len(a.freeList) == 0 {
		return 0, false
	}
	g := a.freeList[len(a.freeList)-1]
	a.freeList = a.freeList[:len(a.freeList)-1]
	a.refs[g] = 1
	return g, true
}

func (a *gppnAllocator) share(g mach.GPPN) { a.refs[g]++ }

// release decrements the sharing count; returns true when the caller held
// the last reference (and must free or recycle the frame).
func (a *gppnAllocator) release(g mach.GPPN) bool {
	a.refs[g]--
	return a.refs[g] == 0
}

// free returns a frame to the pool; call only after release returned true.
func (a *gppnAllocator) free(g mach.GPPN) {
	delete(a.refs, g)
	a.freeList = append(a.freeList, g)
}

func (a *gppnAllocator) refCount(g mach.GPPN) int { return a.refs[g] }

func (a *gppnAllocator) freePages() int { return len(a.freeList) }

// --- Swap ------------------------------------------------------------------

// swapReadAttempts bounds the kernel-side retry of a failed swap read before
// the page-in gives up with EIO.
const swapReadAttempts = 3

// swapSpace is the swap device plus its slot allocator.
type swapSpace struct {
	disk     *mach.Disk
	freeList []uint64
	// contents of duplicated slots are shared copy-on-nothing: dup copies.
}

// newSwapSpace builds the pager's backing store. disk may be a pre-built
// device larger than pages (the embedding host reserves the tail — e.g. for
// the VMM's metadata journal); the pager only ever allocates slots in
// [0, pages). nil means a private device of exactly pages blocks.
func newSwapSpace(world *sim.World, pages uint64, disk *mach.Disk) *swapSpace {
	if disk == nil {
		disk = mach.NewDisk(world, pages)
	}
	s := &swapSpace{disk: disk}
	for i := int64(pages) - 1; i >= 0; i-- {
		s.freeList = append(s.freeList, uint64(i))
	}
	return s
}

func (s *swapSpace) alloc() (uint64, bool) {
	if len(s.freeList) == 0 {
		return 0, false
	}
	b := s.freeList[len(s.freeList)-1]
	s.freeList = s.freeList[:len(s.freeList)-1]
	return b, true
}

// freeSlot releases a slot.
func (s *swapSpace) freeSlot(b uint64) { s.freeList = append(s.freeList, b) }

// dup copies a slot's contents into a fresh slot (fork of swapped pages).
func (s *swapSpace) dup(b uint64) (uint64, bool) {
	nb, ok := s.alloc()
	if !ok {
		return 0, false
	}
	buf := make([]byte, mach.BlockSize)
	if err := s.disk.Read(b, buf); err != nil {
		s.freeSlot(nb)
		return 0, false
	}
	if err := s.disk.Write(nb, buf); err != nil {
		s.freeSlot(nb)
		return 0, false
	}
	return nb, true
}

// residentPage is an entry in the global page-replacement candidate list.
type residentPage struct {
	p   *Proc
	vpn uint64
	seq int // generation to detect staleness cheaply
}

func (k *Kernel) noteResident(p *Proc, vpn uint64) {
	k.handSeq++
	k.resident = append(k.resident, residentPage{p: p, vpn: vpn, seq: k.handSeq})
}

// scratchPage returns the kernel's page-sized scratch buffer, zeroed to
// reproduce the fresh-allocation semantics the transfer paths were written
// against. Reuse is safe because the baton scheduler admits exactly one
// runnable goroutine, and every user (page-out, page-in, COW break, msync)
// is done with the buffer before any path that could re-enter page
// allocation: allocUserPage's eviction (the only nested user) completes
// before its caller touches the buffer it acquired.
func (k *Kernel) scratchPage() []byte {
	clear(k.pageBuf)
	return k.pageBuf
}

// --- Page allocation with replacement --------------------------------------

// allocUserPage gets a guest-physical page for (p, vpn), evicting other
// pages to swap under memory pressure.
func (k *Kernel) allocUserPage(p *Proc, vpn uint64) (mach.GPPN, Errno) {
	for attempt := 0; attempt < 3; attempt++ {
		if g, ok := k.mem.alloc(); ok {
			k.noteResident(p, vpn)
			return g, OK
		}
		if !k.evictSome(8) {
			break
		}
	}
	return 0, ENOMEM
}

// mapUserPage installs the guest PTE for a freshly provided page.
func (p *Proc) mapUserPage(vpn uint64, g mach.GPPN, writable bool) {
	flags := mmu.FlagPresent | mmu.FlagUser
	if writable {
		flags |= mmu.FlagWritable
	}
	p.gpt.Map(vpn, mmu.PTE{PN: uint64(g), Flags: flags})
	p.residentPages++
}

// evictSome pages out up to n resident pages using a second-chance sweep of
// the global candidate list. Returns true if at least one page was freed.
func (k *Kernel) evictSome(n int) bool {
	freed := 0
	scanned := 0
	limit := 2 * len(k.resident)
	for freed < n && scanned < limit && len(k.resident) > 0 {
		rp := k.resident[0]
		k.resident = k.resident[1:]
		scanned++
		pte := rp.p.gpt.Lookup(rp.vpn)
		if !pte.Present() || rp.p.state == stateZombie {
			continue // stale entry
		}
		if pte.Flags.Has(mmu.FlagAccessed) {
			// Second chance: clear and requeue.
			rp.p.gpt.ClearFlags(rp.vpn, mmu.FlagAccessed)
			k.resident = append(k.resident, rp)
			continue
		}
		if k.pageOut(rp.p, rp.vpn, pte) {
			freed++
		}
	}
	if freed == 0 && len(k.resident) > 0 {
		// Pressure override: evict ignoring accessed bits.
		for freed < n && len(k.resident) > 0 {
			rp := k.resident[0]
			k.resident = k.resident[1:]
			pte := rp.p.gpt.Lookup(rp.vpn)
			if !pte.Present() || rp.p.state == stateZombie {
				continue
			}
			if k.pageOut(rp.p, rp.vpn, pte) {
				freed++
			}
		}
	}
	return freed > 0
}

// pageOut writes one page to swap (or drops it if clean and file-backed)
// and frees its frame. The page's owner may be cloaked: the direct-map read
// forces encryption, so only ciphertext ever reaches the swap device.
func (k *Kernel) pageOut(p *Proc, vpn uint64, pte mmu.PTE) bool {
	g := mach.GPPN(pte.PN)
	if k.mem.refCount(g) > 1 {
		// Shared COW frame: unmapping one mapping is correct; the frame
		// stays resident for the other sharers.
		p.gpt.Unmap(vpn)
		p.residentPages--
		k.vmm.InvalidateGuestMapping(p.as, vpn)
		k.mem.release(g)
		// The page content survives in the other sharers' mappings; this
		// process will COW-fault it back in from... nothing. To stay
		// correct we must swap instead. Re-map and refuse.
		// (Shared pages are rare in the workloads; skip them.)
		p.gpt.Map(vpn, pte)
		p.residentPages++
		k.mem.share(g)
		return false
	}
	v := p.vmaAt(vpn)
	dirty := pte.Flags.Has(mmu.FlagDirty)

	if v != nil && v.Kind == VMAFile && !dirty {
		// Clean file page: drop, re-read on demand.
	} else {
		blk, ok := k.swap.alloc()
		if !ok {
			return false
		}
		buf := k.scratchPage()
		// Forces encryption of cloaked plaintext before the kernel sees it.
		if err := k.vmm.PhysRead(g, 0, buf); err != nil {
			k.swap.freeSlot(blk)
			return false
		}
		if kind, _ := k.world.CPU().InjectAt(fault.SiteSwapOut); kind != fault.None {
			if kind == fault.Fail {
				// Page-out aborted mid-flight: the page simply stays resident.
				k.swap.freeSlot(blk)
				return false
			}
			// Kernel-side corruption of the outbound page. For a cloaked page
			// this damages ciphertext, which verification catches at page-in.
			k.world.Fault.Corrupt(buf)
		}
		if k.Adversary.OnPageOut != nil {
			k.Adversary.OnPageOut(k, p, vpn, buf)
		}
		if err := k.swap.disk.Write(blk, buf); err != nil {
			k.swap.freeSlot(blk)
			return false
		}
		// Tell the VMM where this page's ciphertext now lives. A no-op
		// unless a metadata journal is attached; the VMM treats the
		// location as an untrusted hint for crash recovery.
		k.vmm.NoteSwapSlot(g, blk)
		if old, had := p.swapped[vpn]; had {
			k.swap.freeSlot(old)
		}
		p.swapped[vpn] = blk
		k.world.CPU().ChargeAdd(0, sim.CtrPageOut, 1)
		k.world.CPU().Emit(obs.KindSwap, "out", vpn)
	}
	p.gpt.Unmap(vpn)
	p.residentPages--
	k.vmm.InvalidateGuestMapping(p.as, vpn)
	if k.mem.release(g) {
		k.vmm.NotifyFrameRecycled(g)
		k.mem.free(g)
	}
	return true
}

// handleFault services a guest page fault for (p, vpn). Returns OK if the
// mapping is (re-)established, or an errno for a genuine segfault.
func (k *Kernel) handleFault(p *Proc, f *mmu.Fault) Errno {
	vpn := f.VPN
	v := p.vmaAt(vpn)
	if v == nil {
		return EFAULT
	}
	if f.Access == mmu.AccessWrite && !v.Writable {
		return EACCES
	}

	pte := p.gpt.Lookup(vpn)
	if pte.Present() {
		// Present but faulted: protection. COW write?
		if f.Access == mmu.AccessWrite && v.Writable && !pte.Flags.Has(mmu.FlagWritable) {
			return k.cowBreak(p, vpn, pte)
		}
		return EFAULT
	}

	// Not present: demand page.
	if blk, swappedOut := p.swapped[vpn]; swappedOut {
		return k.pageInSwap(p, vpn, v, blk)
	}
	switch v.Kind {
	case VMAFile:
		return k.pageInFile(p, vpn, v)
	case VMAShm:
		return k.pageInShm(p, vpn, v)
	default:
		return k.pageInZero(p, vpn, v)
	}
}

func (k *Kernel) pageInZero(p *Proc, vpn uint64, v *VMA) Errno {
	g, errno := k.allocUserPage(p, vpn)
	if errno != OK {
		return errno
	}
	if err := k.vmm.PhysZero(g); err != nil {
		k.mem.release(g)
		k.mem.free(g)
		return EIO
	}
	p.mapUserPage(vpn, g, v.Writable)
	k.world.CPU().ChargeAdd(0, sim.CtrPageFaultDemand, 1)
	return OK
}

func (k *Kernel) pageInSwap(p *Proc, vpn uint64, v *VMA, blk uint64) Errno {
	g, errno := k.allocUserPage(p, vpn)
	if errno != OK {
		return errno
	}
	buf := k.scratchPage()
	// Transient read errors get a bounded retry before the fault is
	// surfaced: a real kernel's block layer does the same, and the E13
	// degradation scenarios rely on the distinction between one bad read
	// and a persistently failing device.
	var readErr error
	for attempt := 0; attempt < swapReadAttempts; attempt++ {
		if readErr = k.swap.disk.Read(blk, buf); readErr == nil {
			break
		}
	}
	if readErr != nil {
		k.mem.release(g)
		k.mem.free(g)
		return EIO
	}
	if kind, _ := k.world.CPU().InjectAt(fault.SiteSwapIn); kind != fault.None {
		if kind == fault.Fail {
			k.mem.release(g)
			k.mem.free(g)
			return EIO
		}
		k.world.Fault.Corrupt(buf)
	}
	if k.Adversary.OnPageIn != nil {
		k.Adversary.OnPageIn(k, p, vpn, buf)
	}
	if err := k.vmm.PhysWrite(g, 0, buf); err != nil {
		k.mem.release(g)
		k.mem.free(g)
		return EIO
	}
	p.mapUserPage(vpn, g, v.Writable)
	delete(p.swapped, vpn)
	k.swap.freeSlot(blk)
	k.world.CPU().ChargeAdd(0, sim.CtrPageIn, 1)
	k.world.CPU().Emit(obs.KindSwap, "in", vpn)
	return OK
}

func (k *Kernel) pageInFile(p *Proc, vpn uint64, v *VMA) Errno {
	g, errno := k.allocUserPage(p, vpn)
	if errno != OK {
		return errno
	}
	pageIdx := v.FileOff + (vpn - v.Base)
	buf := k.scratchPage()
	if err := k.fs.ReadFilePage(v.Ino, pageIdx, buf); err != OK {
		k.mem.release(g)
		k.mem.free(g)
		return err
	}
	if err := k.vmm.PhysWrite(g, 0, buf); err != nil {
		k.mem.release(g)
		k.mem.free(g)
		return EIO
	}
	p.mapUserPage(vpn, g, v.Writable)
	k.world.CPU().ChargeAdd(0, sim.CtrPageFaultDemand, 1)
	return OK
}

// cowBreak copies a shared frame on write.
func (k *Kernel) cowBreak(p *Proc, vpn uint64, pte mmu.PTE) Errno {
	g := mach.GPPN(pte.PN)
	if k.mem.refCount(g) == 1 {
		// Last sharer: just restore write permission.
		p.gpt.SetFlags(vpn, mmu.FlagWritable)
		k.vmm.InvalidateGuestMapping(p.as, vpn)
		k.world.CPU().ChargeAdd(0, sim.CtrPageFaultCOW, 1)
		return OK
	}
	ng, errno := k.allocUserPage(p, vpn)
	if errno != OK {
		return errno
	}
	buf := k.scratchPage()
	if err := k.vmm.PhysRead(g, 0, buf); err != nil {
		k.mem.release(ng)
		k.mem.free(ng)
		return EIO
	}
	if err := k.vmm.PhysWrite(ng, 0, buf); err != nil {
		k.mem.release(ng)
		k.mem.free(ng)
		return EIO
	}
	k.world.CPU().ChargeAdd(k.world.Cost.PageCopy, sim.CtrPageCopy, 1)
	k.mem.release(g)
	p.gpt.Map(vpn, mmu.PTE{PN: uint64(ng),
		Flags: mmu.FlagPresent | mmu.FlagUser | mmu.FlagWritable})
	k.vmm.InvalidateGuestMapping(p.as, vpn)
	k.world.CPU().ChargeAdd(0, sim.CtrPageFaultCOW, 1)
	return OK
}

// --- brk / mmap / munmap ----------------------------------------------------

// sbrk grows (or shrinks) the heap by delta pages, returning the old break
// VPN.
func (k *Kernel) sbrk(p *Proc, delta int64) (uint64, Errno) {
	old := p.brk
	nb := int64(p.brk) + delta
	if nb < int64(LayoutHeapBase) || nb > int64(LayoutHeapMax) {
		return 0, ENOMEM
	}
	p.brk = uint64(nb)
	heap := p.vmas[0]
	heap.Pages = p.brk - LayoutHeapBase
	if delta < 0 {
		for vpn := p.brk; vpn < old; vpn++ {
			k.dropPage(p, vpn)
		}
	}
	return old, OK
}

// mmapAnon maps pages of zeroed memory, returning the base VPN.
func (k *Kernel) mmapAnon(p *Proc, pages uint64, writable bool) (uint64, Errno) {
	if pages == 0 {
		return 0, EINVAL
	}
	base := p.mmapPtr
	if base+pages > LayoutMmapMax {
		return 0, ENOMEM
	}
	p.mmapPtr += pages
	p.vmas = append(p.vmas, &VMA{Base: base, Pages: pages, Kind: VMAAnon, Writable: writable})
	return base, OK
}

// mmapFile maps a file range.
func (k *Kernel) mmapFile(p *Proc, pages uint64, ino Ino, fileOffPages uint64, writable bool) (uint64, Errno) {
	if pages == 0 {
		return 0, EINVAL
	}
	base := p.mmapPtr
	if base+pages > LayoutMmapMax {
		return 0, ENOMEM
	}
	p.mmapPtr += pages
	p.vmas = append(p.vmas, &VMA{Base: base, Pages: pages, Kind: VMAFile,
		Writable: writable, Ino: ino, FileOff: fileOffPages})
	return base, OK
}

// munmap removes the VMA starting at base.
func (k *Kernel) munmap(p *Proc, base uint64) Errno {
	for i, v := range p.vmas {
		if v.Base == base && (v.Kind == VMAAnon || v.Kind == VMAFile || v.Kind == VMAShm) {
			for vpn := v.Base; vpn < v.Base+v.Pages; vpn++ {
				k.dropPage(p, vpn)
			}
			p.vmas = append(p.vmas[:i], p.vmas[i+1:]...)
			return OK
		}
	}
	return EINVAL
}

// msync writes dirty pages of a file mapping back to the file. For cloaked
// windows the direct-map read forces encryption, so the file receives
// ciphertext — this is how cloaked file persistence works.
func (k *Kernel) msync(p *Proc, base uint64) Errno {
	var v *VMA
	for _, q := range p.vmas {
		if q.Base == base && q.Kind == VMAFile {
			v = q
			break
		}
	}
	if v == nil {
		return EINVAL
	}
	buf := k.scratchPage()
	for vpn := v.Base; vpn < v.Base+v.Pages; vpn++ {
		if blk, out := p.swapped[vpn]; out {
			// A dirty page of this mapping was paged out: its newest
			// content lives in swap (as ciphertext for cloaked windows).
			if err := k.swap.disk.Read(blk, buf); err != nil {
				return EIO
			}
			if err := k.fs.WriteFilePage(v.Ino, v.FileOff+(vpn-v.Base), buf); err != OK {
				return err
			}
			continue // leave it swap-resident; it is now also in the file
		}
		pte := p.gpt.Lookup(vpn)
		if !pte.Present() || !pte.Flags.Has(mmu.FlagDirty) {
			continue
		}
		g := mach.GPPN(pte.PN)
		if err := k.vmm.PhysRead(g, 0, buf); err != nil {
			return EIO
		}
		if err := k.fs.WriteFilePage(v.Ino, v.FileOff+(vpn-v.Base), buf); err != OK {
			return err
		}
		p.gpt.ClearFlags(vpn, mmu.FlagDirty)
	}
	return OK
}

// dropPage discards the mapping and backing of one page.
func (k *Kernel) dropPage(p *Proc, vpn uint64) {
	pte := p.gpt.Lookup(vpn)
	if pte.Present() {
		g := mach.GPPN(pte.PN)
		p.gpt.Unmap(vpn)
		p.residentPages--
		k.vmm.InvalidateGuestMapping(p.as, vpn)
		if k.mem.release(g) {
			k.vmm.NotifyFrameRecycled(g)
			k.mem.free(g)
		}
	}
	if blk, ok := p.swapped[vpn]; ok {
		k.swap.freeSlot(blk)
		delete(p.swapped, vpn)
	}
}
