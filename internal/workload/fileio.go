package workload

import (
	"overshadow/internal/guestos"
	"overshadow/internal/mach"
)

// FileIOConfig parameterizes the file-I/O workload (experiment E5) — a
// dbench-like mix of sequential writes, sequential reads, and random reads
// against one file, either plain (marshalled syscalls) or cloaked
// (shim-emulated mmap I/O).
type FileIOConfig struct {
	FileKB    int  // file size in KiB
	IOSize    int  // bytes per operation
	RandReads int  // random-read operations after the sequential phases
	Cloak     bool // place the file in the cloaked namespace
}

// FileIOPath returns the workload's target file path.
func FileIOPath(cfg FileIOConfig) string {
	if cfg.Cloak {
		return "/secret/data.bin"
	}
	return "/plain-data.bin"
}

// FileIOProgram builds the file-I/O program body.
func FileIOProgram(cfg FileIOConfig) guestos.Program {
	return func(e guestos.Env) {
		if cfg.Cloak {
			if err := e.Mkdir("/secret"); err != nil && err != guestos.EEXIST {
				e.Exit(1)
			}
		}
		path := FileIOPath(cfg)
		total := cfg.FileKB * 1024
		bufPages := cfg.IOSize/mach.PageSize + 2
		buf, err := e.Alloc(bufPages)
		if err != nil {
			e.Exit(1)
		}
		chunk := make([]byte, cfg.IOSize)
		for i := range chunk {
			chunk[i] = byte(i*7 + 3)
		}
		e.WriteMem(buf, chunk)

		// Sequential write phase.
		fd, err := e.Open(path, guestos.OCreate|guestos.ORdWr|guestos.OTrunc)
		if err != nil {
			e.Exit(1)
		}
		for off := 0; off < total; off += cfg.IOSize {
			n := cfg.IOSize
			if off+n > total {
				n = total - off
			}
			if _, err := e.Write(fd, buf, n); err != nil {
				e.Exit(1)
			}
		}

		// Sequential read phase.
		if _, err := e.Lseek(fd, 0, guestos.SeekSet); err != nil {
			e.Exit(1)
		}
		for {
			n, err := e.Read(fd, buf, cfg.IOSize)
			if err != nil {
				e.Exit(1)
			}
			if n == 0 {
				break
			}
			e.Compute(uint64(n) / 64)
		}

		// Random read phase.
		x := uint64(6364136223846793005)
		slots := total / cfg.IOSize
		if slots == 0 {
			slots = 1
		}
		for i := 0; i < cfg.RandReads; i++ {
			x = x*2862933555777941757 + 3037000493
			off := int(x%uint64(slots)) * cfg.IOSize
			if _, err := e.Pread(fd, buf, cfg.IOSize, uint64(off)); err != nil {
				e.Exit(1)
			}
			e.Compute(uint64(cfg.IOSize) / 64)
		}
		if err := e.Close(fd); err != nil {
			e.Exit(1)
		}
		e.Exit(0)
	}
}

// PagingConfig parameterizes the memory-pressure sweep (experiment E6): a
// working set touched with page-granularity strides, sized relative to the
// machine's RAM so the kernel must page cloaked memory to swap.
type PagingConfig struct {
	WorkingSetPages int
	Sweeps          int
}

// PagingProgram builds the paging-pressure body.
func PagingProgram(cfg PagingConfig) guestos.Program {
	return func(e guestos.Env) {
		base, err := e.Alloc(cfg.WorkingSetPages)
		if err != nil {
			e.Exit(1)
		}
		for s := 0; s < cfg.Sweeps; s++ {
			for p := 0; p < cfg.WorkingSetPages; p++ {
				va := base + mach.Addr(p*mach.PageSize)
				if s == 0 {
					e.Store64(va, uint64(p)+1)
				} else if e.Load64(va) != uint64(p)+1 {
					e.Exit(2) // data corrupted across paging
				}
				e.Compute(500)
			}
		}
		e.Exit(0)
	}
}

// ProcessMixConfig parameterizes the compile-like fork/exec mix (E9).
type ProcessMixConfig struct {
	Jobs        int    // parallel "compiler" children
	UnitsPerJob uint64 // compute per child
	FilesPerJob int    // temp files each child writes and reads
	FileKB      int
}

// ProcessMixProgram builds a make(1)-like driver: fork Jobs children, each
// computing and doing temp-file I/O, then reap them all.
func ProcessMixProgram(cfg ProcessMixConfig) guestos.Program {
	return func(e guestos.Env) {
		for j := 0; j < cfg.Jobs; j++ {
			job := j
			_, err := e.Fork(func(c guestos.Env) {
				compileJob(c, cfg, job)
			})
			if err != nil {
				e.Exit(1)
			}
		}
		for j := 0; j < cfg.Jobs; j++ {
			if _, status, err := e.WaitPid(-1); err != nil || status != 0 {
				e.Exit(1)
			}
		}
		e.Exit(0)
	}
}

func compileJob(e guestos.Env, cfg ProcessMixConfig, job int) {
	buf, err := e.Alloc(cfg.FileKB/4 + 1)
	if err != nil {
		e.Exit(1)
	}
	data := make([]byte, cfg.FileKB*1024)
	for i := range data {
		data[i] = byte(i + job)
	}
	e.WriteMem(buf, data)
	e.Compute(cfg.UnitsPerJob)
	for f := 0; f < cfg.FilesPerJob; f++ {
		path := tmpPath(job, f)
		fd, err := e.Open(path, guestos.OCreate|guestos.ORdWr|guestos.OTrunc)
		if err != nil {
			e.Exit(1)
		}
		if _, err := e.Write(fd, buf, len(data)); err != nil {
			e.Exit(1)
		}
		must1(e.Lseek(fd, 0, guestos.SeekSet))
		if _, err := e.Read(fd, buf, len(data)); err != nil {
			e.Exit(1)
		}
		must(e.Close(fd))
		must(e.Unlink(path))
	}
	e.Exit(0)
}

func tmpPath(job, f int) string {
	const digits = "0123456789"
	return "/tmp-" + string([]byte{digits[job/10%10], digits[job%10], '-', digits[f%10]}) + ".o"
}
