package workload

import (
	"fmt"

	"overshadow/internal/guestos"
	"overshadow/internal/mach"
)

// WebConfig parameterizes the web-server macro workload (experiment E4):
// a server process answers requests arriving over a pipe, fetching content
// from the filesystem and writing responses back — the syscall mix of an
// Apache-style static server (accept/read/open/read/write per request).
type WebConfig struct {
	Requests     int // total requests the client issues
	PayloadBytes int // size of each served document
	NumDocs      int // distinct documents (rotated round-robin)
	ParseCompute uint64
	// CloakFiles serves documents from the cloaked-file namespace.
	CloakFiles bool
}

// WebDocPath names document i.
func WebDocPath(cfg WebConfig, i int) string {
	dir := "/www"
	if cfg.CloakFiles {
		dir = "/secret"
	}
	return fmt.Sprintf("%s/doc%03d", dir, i%cfg.NumDocs)
}

// WebSeed pre-populates the document tree. Call on the Env of a setup
// program (or via core.System.WriteGuestFile for plain files) before the
// server runs.
func WebSeed(e guestos.Env, cfg WebConfig) error {
	dir := "/www"
	if cfg.CloakFiles {
		dir = "/secret"
	}
	if err := e.Mkdir(dir); err != nil && err != guestos.EEXIST {
		return err
	}
	buf, err := e.Alloc((cfg.PayloadBytes+mach.PageSize-1)/mach.PageSize + 1)
	if err != nil {
		return err
	}
	doc := make([]byte, cfg.PayloadBytes)
	for i := range doc {
		doc[i] = byte('A' + i%26)
	}
	e.WriteMem(buf, doc)
	for i := 0; i < cfg.NumDocs; i++ {
		fd, err := e.Open(WebDocPath(cfg, i), guestos.OCreate|guestos.OWrOnly|guestos.OTrunc)
		if err != nil {
			return err
		}
		if _, err := e.Write(fd, buf, cfg.PayloadBytes); err != nil {
			return err
		}
		if err := e.Close(fd); err != nil {
			return err
		}
	}
	return nil
}

// WebServerProgram builds the combined client+server program: it forks a
// client that issues requests through a pipe pair, while the parent serves
// them. Served bytes flow back through the response pipe.
//
// Request protocol: 2-byte document index. Response: 4-byte length followed
// by the document bytes.
func WebServerProgram(cfg WebConfig) guestos.Program {
	return func(e guestos.Env) {
		if err := WebSeed(e, cfg); err != nil {
			e.Exit(1)
		}
		reqR, reqW, err := e.Pipe()
		if err != nil {
			e.Exit(1)
		}
		respR, respW, err := e.Pipe()
		if err != nil {
			e.Exit(1)
		}

		pid, err := e.Fork(func(c guestos.Env) {
			webClient(c, cfg, reqW, respR)
		})
		if err != nil {
			e.Exit(1)
		}
		must(e.Close(reqW))
		must(e.Close(respR))
		webServe(e, cfg, reqR, respW)
		must2(e.WaitPid(pid))
		e.Exit(0)
	}
}

func webClient(e guestos.Env, cfg WebConfig, reqW, respR int) {
	msg, err := e.Alloc(1)
	if err != nil {
		e.Exit(1)
	}
	resp, err := e.Alloc(cfg.PayloadBytes/mach.PageSize + 2)
	if err != nil {
		e.Exit(1)
	}
	two := make([]byte, 2)
	for i := 0; i < cfg.Requests; i++ {
		two[0] = byte(i % cfg.NumDocs)
		two[1] = byte((i % cfg.NumDocs) >> 8)
		e.WriteMem(msg, two)
		if _, err := e.Write(reqW, msg, 2); err != nil {
			e.Exit(1)
		}
		// Read the 4-byte length header.
		if !readFull(e, respR, resp, 4) {
			e.Exit(1)
		}
		hdr := make([]byte, 4)
		e.ReadMem(resp, hdr)
		n := int(hdr[0]) | int(hdr[1])<<8 | int(hdr[2])<<16 | int(hdr[3])<<24
		if !readFull(e, respR, resp, n) {
			e.Exit(1)
		}
	}
	must(e.Close(reqW))
	must(e.Close(respR))
	e.Exit(0)
}

func readFull(e guestos.Env, fd int, va mach.Addr, n int) bool {
	got := 0
	for got < n {
		m, err := e.Read(fd, va+mach.Addr(got), n-got)
		if err != nil || m == 0 {
			return false
		}
		got += m
	}
	return true
}

func webServe(e guestos.Env, cfg WebConfig, reqR, respW int) {
	reqBuf, err := e.Alloc(1)
	if err != nil {
		e.Exit(1)
	}
	body, err := e.Alloc(cfg.PayloadBytes/mach.PageSize + 2)
	if err != nil {
		e.Exit(1)
	}
	hdrB := make([]byte, 4)
	for {
		if !readFull(e, reqR, reqBuf, 2) {
			break // client closed: done
		}
		two := make([]byte, 2)
		e.ReadMem(reqBuf, two)
		doc := int(two[0]) | int(two[1])<<8
		e.Compute(cfg.ParseCompute)
		fd, err := e.Open(WebDocPath(cfg, doc), guestos.ORdOnly)
		if err != nil {
			e.Exit(1)
		}
		n, err := e.Read(fd, body+4, cfg.PayloadBytes)
		if err != nil {
			e.Exit(1)
		}
		must(e.Close(fd))
		hdrB[0], hdrB[1], hdrB[2], hdrB[3] = byte(n), byte(n>>8), byte(n>>16), byte(n>>24)
		e.WriteMem(body, hdrB)
		off := 0
		for off < n+4 {
			m, err := e.Write(respW, body+mach.Addr(off), n+4-off)
			if err != nil {
				e.Exit(1)
			}
			off += m
		}
	}
	must(e.Close(reqR))
	must(e.Close(respW))
}
