package workload_test

import (
	"testing"

	"overshadow/internal/core"
	"overshadow/internal/sim"
	"overshadow/internal/workload"
)

// runWithStatus runs prog in a child so the parent can report its exit
// status back to the host test.
func runWithStatus(t *testing.T, memPages int, cloaked bool, prog core.Program) (int, *core.System) {
	t.Helper()
	sys := core.NewSystem(core.Config{MemoryPages: memPages, Seed: 5})
	status := -1
	sys.Register("driver", func(e core.Env) {
		pid, err := e.Fork(func(c core.Env) { prog(c) })
		if err != nil {
			t.Errorf("fork: %v", err)
			e.Exit(1)
		}
		_, st, err := e.WaitPid(pid)
		if err != nil {
			t.Errorf("wait: %v", err)
		}
		status = st
		e.Exit(0)
	})
	var so []core.SpawnOpt
	if cloaked {
		so = append(so, core.Cloaked())
	}
	if _, err := sys.Spawn("driver", so...); err != nil {
		t.Fatal(err)
	}
	sys.Run()
	return status, sys
}

func TestAllCPUKernelsCompleteNative(t *testing.T) {
	for _, k := range workload.AllCPUKernels() {
		k := k
		t.Run(string(k), func(t *testing.T) {
			cfg := workload.CPUConfig{Kernel: k, WorkingSetK: 32, Iters: 1}
			status, _ := runWithStatus(t, 2048, false, workload.CPUProgram(cfg))
			if status != 0 {
				t.Fatalf("%s exited %d", k, status)
			}
		})
	}
}

func TestAllCPUKernelsCompleteCloaked(t *testing.T) {
	for _, k := range workload.AllCPUKernels() {
		k := k
		t.Run(string(k), func(t *testing.T) {
			cfg := workload.CPUConfig{Kernel: k, WorkingSetK: 32, Iters: 1}
			status, _ := runWithStatus(t, 2048, true, workload.CPUProgram(cfg))
			if status != 0 {
				t.Fatalf("%s exited %d", k, status)
			}
		})
	}
}

func TestIntSortActuallySorts(t *testing.T) {
	// The kernel itself verifies sortedness and exits 2 on failure, so a
	// zero status is the assertion.
	cfg := workload.CPUConfig{Kernel: workload.KernelIntSort, WorkingSetK: 16, Iters: 2}
	status, _ := runWithStatus(t, 1024, false, workload.CPUProgram(cfg))
	if status != 0 {
		t.Fatalf("intsort status %d", status)
	}
}

func TestWebServerServesAllRequests(t *testing.T) {
	cfg := workload.WebConfig{Requests: 25, PayloadBytes: 2048, NumDocs: 3, ParseCompute: 500}
	status, sys := runWithStatus(t, 4096, false, workload.WebServerProgram(cfg))
	if status != 0 {
		t.Fatalf("webserver exited %d", status)
	}
	if sys.Stats().Get(sim.CtrSyscall) < uint64(cfg.Requests) {
		t.Fatal("suspiciously few syscalls for a request loop")
	}
}

func TestWebServerCloaked(t *testing.T) {
	cfg := workload.WebConfig{Requests: 10, PayloadBytes: 1024, NumDocs: 2, ParseCompute: 100}
	status, sys := runWithStatus(t, 4096, true, workload.WebServerProgram(cfg))
	if status != 0 {
		t.Fatalf("cloaked webserver exited %d", status)
	}
	if sys.Stats().Get(sim.CtrShimMarshalBytes) == 0 {
		t.Fatal("cloaked server never marshalled")
	}
}

func TestFileIOCompletesAllModes(t *testing.T) {
	cases := []struct {
		name   string
		cloakP bool
		cloakF bool
	}{
		{"native", false, false},
		{"cloaked-marshalled", true, false},
		{"cloaked-secure", true, true},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			cfg := workload.FileIOConfig{FileKB: 64, IOSize: 8192, RandReads: 10, Cloak: c.cloakF}
			status, _ := runWithStatus(t, 2048, c.cloakP, workload.FileIOProgram(cfg))
			if status != 0 {
				t.Fatalf("fileio %s exited %d", c.name, status)
			}
		})
	}
}

func TestFileIOCloakedFileStoresCiphertext(t *testing.T) {
	cfg := workload.FileIOConfig{FileKB: 32, IOSize: 4096, RandReads: 0, Cloak: true}
	status, sys := runWithStatus(t, 2048, true, workload.FileIOProgram(cfg))
	if status != 0 {
		t.Fatalf("exited %d", status)
	}
	data, err := sys.ReadGuestFile(workload.FileIOPath(cfg))
	if err != nil {
		t.Fatal(err)
	}
	// The plaintext pattern is byte(i*7+3); scan a stretch for it.
	matches := 0
	for i := 0; i+4 < 4096 && i < len(data)-4; i++ {
		if data[i] == 3 && data[i+1] == 10 && data[i+2] == 17 && data[i+3] == 24 {
			matches++
		}
	}
	if matches > 0 {
		t.Fatal("plaintext pattern found in cloaked file")
	}
}

func TestPagingProgramSurvivesPressure(t *testing.T) {
	cfg := workload.PagingConfig{WorkingSetPages: 160, Sweeps: 3}
	status, sys := runWithStatus(t, 128, false, workload.PagingProgram(cfg))
	if status != 0 {
		t.Fatalf("paging exited %d (2 = corruption)", status)
	}
	if sys.Stats().Get(sim.CtrPageOut) == 0 {
		t.Fatal("no paging under pressure")
	}
}

func TestPagingProgramSurvivesPressureCloaked(t *testing.T) {
	cfg := workload.PagingConfig{WorkingSetPages: 160, Sweeps: 3}
	status, sys := runWithStatus(t, 128, true, workload.PagingProgram(cfg))
	if status != 0 {
		t.Fatalf("cloaked paging exited %d", status)
	}
	if sys.Stats().Get(sim.CtrPageEncrypt) == 0 {
		t.Fatal("cloaked paging without encryption")
	}
}

func TestProcessMixRunsAllJobs(t *testing.T) {
	cfg := workload.ProcessMixConfig{Jobs: 3, UnitsPerJob: 50_000, FilesPerJob: 2, FileKB: 8}
	status, sys := runWithStatus(t, 4096, false, workload.ProcessMixProgram(cfg))
	if status != 0 {
		t.Fatalf("mix exited %d", status)
	}
	// driver + mix + 3 jobs => at least 4 forks.
	if sys.Stats().Get(sim.CtrFork) < 4 {
		t.Fatalf("forks = %d", sys.Stats().Get(sim.CtrFork))
	}
}

func TestProcessMixCloaked(t *testing.T) {
	cfg := workload.ProcessMixConfig{Jobs: 2, UnitsPerJob: 20_000, FilesPerJob: 1, FileKB: 4}
	status, _ := runWithStatus(t, 4096, true, workload.ProcessMixProgram(cfg))
	if status != 0 {
		t.Fatalf("cloaked mix exited %d", status)
	}
}

func TestKVServiceCorrectNativeAndCloaked(t *testing.T) {
	// The client verifies every get against what it put and exits 3 on any
	// wrong answer, so status 0 is the correctness assertion.
	cfg := workload.KVConfig{Ops: 60, ValueBytes: 100, Keys: 8, PutRatio: 40, Persist: true}
	for _, cloaked := range []bool{false, true} {
		status, sys := runWithStatus(t, 2048, cloaked, workload.KVProgram(cfg))
		if status != 0 {
			t.Fatalf("cloaked=%v: exited %d", cloaked, status)
		}
		if _, err := sys.ReadGuestFile("/kv-snapshot"); err != nil {
			t.Fatalf("cloaked=%v: snapshot missing: %v", cloaked, err)
		}
	}
}

func TestWebSeedCreatesDocs(t *testing.T) {
	sys := core.NewSystem(core.Config{MemoryPages: 2048})
	cfg := workload.WebConfig{Requests: 1, PayloadBytes: 512, NumDocs: 4}
	sys.Register("seed", func(e core.Env) {
		if err := workload.WebSeed(e, cfg); err != nil {
			t.Errorf("seed: %v", err)
		}
		for i := 0; i < cfg.NumDocs; i++ {
			st, err := e.Stat(workload.WebDocPath(cfg, i))
			if err != nil || st.Size != uint64(cfg.PayloadBytes) {
				t.Errorf("doc %d: %+v %v", i, st, err)
			}
		}
		e.Exit(0)
	})
	if _, err := sys.Spawn("seed", core.Cloaked()); err != nil {
		t.Fatal(err)
	}
	sys.Run()
}
