package workload

import (
	"overshadow/internal/guestos"
	"overshadow/internal/mach"
)

// KVConfig parameterizes the key-value service macro workload (experiment
// E12): a memcached-style server process answers get/put requests over
// pipes, keeping its table in (optionally protected) memory and
// persisting it to a file at shutdown. This models the paper-era "protect
// the data-handling server from its own OS" scenario end to end.
type KVConfig struct {
	Ops        int // total operations the client issues
	ValueBytes int // value size
	Keys       int // distinct keys (cycled)
	PutRatio   int // percentage of ops that are puts (rest gets)
	Persist    bool
}

const kvSlot = 256 // fixed slot: 2B key index + 2B value length + value

// KVProgram builds the combined client+server body. Protocol over the
// request pipe: 1B op ('P'/'G'/'Q'), 2B key index, and for puts 2B length +
// value. Reply: 2B length (0 = miss) + value.
func KVProgram(cfg KVConfig) guestos.Program {
	if cfg.ValueBytes > kvSlot-4 {
		panic("workload: KV value exceeds slot")
	}
	return func(e guestos.Env) {
		reqR, reqW, err := e.Pipe()
		if err != nil {
			e.Exit(1)
		}
		repR, repW, err := e.Pipe()
		if err != nil {
			e.Exit(1)
		}
		pid, err := e.Fork(func(c guestos.Env) {
			must(c.Close(reqR))
			must(c.Close(repW))
			kvClient(c, cfg, reqW, repR)
		})
		if err != nil {
			e.Exit(1)
		}
		must(e.Close(reqW))
		must(e.Close(repR))
		kvServe(e, cfg, reqR, repW)
		if _, status := must2(e.WaitPid(pid)); status != 0 {
			e.Exit(1)
		}
		e.Exit(0)
	}
}

func kvReadFull(e guestos.Env, fd int, va mach.Addr, n int) bool {
	got := 0
	for got < n {
		m, err := e.Read(fd, va+mach.Addr(got), n-got)
		if err != nil || m == 0 {
			return false
		}
		got += m
	}
	return true
}

func kvWriteFull(e guestos.Env, fd int, va mach.Addr, n int) bool {
	off := 0
	for off < n {
		m, err := e.Write(fd, va+mach.Addr(off), n-off)
		if err != nil {
			return false
		}
		off += m
	}
	return true
}

func kvServe(e guestos.Env, cfg KVConfig, reqR, repW int) {
	tablePages := (cfg.Keys*kvSlot + mach.PageSize - 1) / mach.PageSize
	table, err := e.Alloc(tablePages + 1)
	if err != nil {
		e.Exit(1)
	}
	io, err := e.Alloc(1)
	if err != nil {
		e.Exit(1)
	}
	hdr := make([]byte, 5)
	for {
		if !kvReadFull(e, reqR, io, 1) {
			e.Exit(1)
		}
		e.ReadMem(io, hdr[:1])
		op := hdr[0]
		if op == 'Q' {
			break
		}
		if !kvReadFull(e, reqR, io, 2) {
			e.Exit(1)
		}
		e.ReadMem(io, hdr[:2])
		key := int(hdr[0]) | int(hdr[1])<<8
		slot := table + mach.Addr(key*kvSlot)
		switch op {
		case 'P':
			if !kvReadFull(e, reqR, io, 2) {
				e.Exit(1)
			}
			e.ReadMem(io, hdr[:2])
			vlen := int(hdr[0]) | int(hdr[1])<<8
			if !kvReadFull(e, reqR, io, vlen) {
				e.Exit(1)
			}
			val := make([]byte, vlen)
			e.ReadMem(io, val)
			rec := append([]byte{byte(vlen), byte(vlen >> 8)}, val...)
			e.WriteMem(slot, rec)
			e.WriteMem(io, []byte{1, 0})
			if !kvWriteFull(e, repW, io, 2) {
				e.Exit(1)
			}
		case 'G':
			lenb := make([]byte, 2)
			e.ReadMem(slot, lenb)
			vlen := int(lenb[0]) | int(lenb[1])<<8
			rep := make([]byte, 2+vlen)
			copy(rep, lenb)
			if vlen > 0 {
				val := make([]byte, vlen)
				e.ReadMem(slot+2, val)
				copy(rep[2:], val)
			}
			e.WriteMem(io, rep)
			if !kvWriteFull(e, repW, io, len(rep)) {
				e.Exit(1)
			}
		}
		e.Compute(500) // request parsing / hashing
	}
	if cfg.Persist {
		fd, err := e.Open("/kv-snapshot", guestos.OCreate|guestos.OWrOnly|guestos.OTrunc)
		if err != nil {
			e.Exit(1)
		}
		if _, err := e.Write(fd, table, cfg.Keys*kvSlot); err != nil {
			e.Exit(1)
		}
		must(e.Close(fd))
	}
	must(e.Close(reqR))
	must(e.Close(repW))
}

func kvClient(e guestos.Env, cfg KVConfig, reqW, repR int) {
	io, err := e.Alloc(1)
	if err != nil {
		e.Exit(1)
	}
	val := make([]byte, cfg.ValueBytes)
	for i := range val {
		val[i] = byte(i*13 + 7)
	}
	written := make([]bool, cfg.Keys)
	x := uint64(0x243F6A8885A308D3)
	for op := 0; op < cfg.Ops; op++ {
		x = x*6364136223846793005 + 1442695040888963407
		key := int(x>>33) % cfg.Keys
		doPut := int(x%100) < cfg.PutRatio || !written[key]
		if doPut {
			msg := []byte{'P', byte(key), byte(key >> 8),
				byte(cfg.ValueBytes), byte(cfg.ValueBytes >> 8)}
			msg = append(msg, val...)
			e.WriteMem(io, msg)
			if !kvWriteFull(e, reqW, io, len(msg)) {
				e.Exit(1)
			}
			if !kvReadFull(e, repR, io, 2) {
				e.Exit(1)
			}
			written[key] = true
		} else {
			msg := []byte{'G', byte(key), byte(key >> 8)}
			e.WriteMem(io, msg)
			if !kvWriteFull(e, reqW, io, len(msg)) {
				e.Exit(1)
			}
			if !kvReadFull(e, repR, io, 2) {
				e.Exit(1)
			}
			hdr := make([]byte, 2)
			e.ReadMem(io, hdr)
			vlen := int(hdr[0]) | int(hdr[1])<<8
			if vlen != cfg.ValueBytes {
				e.Exit(3) // wrong answer from the store
			}
			if !kvReadFull(e, repR, io, vlen) {
				e.Exit(1)
			}
			got := make([]byte, vlen)
			e.ReadMem(io, got)
			for i := range got {
				if got[i] != val[i] {
					e.Exit(3)
				}
			}
		}
	}
	e.WriteMem(io, []byte{'Q'})
	kvWriteFull(e, reqW, io, 1)
	must(e.Close(reqW))
	must(e.Close(repR))
	e.Exit(0)
}
