// Package workload provides the synthetic application programs used by the
// experiments: CPU-bound kernels standing in for SPEC-style benchmarks, a
// web-server request loop, file-I/O scans, a compile-like process mix, and
// a paging-pressure sweep. Every program is written against guestos.Env, so
// the identical body runs natively or cloaked — which is exactly the
// comparison the paper's evaluation makes.
package workload

import (
	"fmt"

	"overshadow/internal/guestos"
	"overshadow/internal/mach"
)

// CPUKernel names one of the SPEC-like compute kernels.
type CPUKernel string

// The CPU-bound kernel suite (experiment E3). Working sets and access
// patterns differ so cloaking costs (page-granularity crypto at kernel
// interactions) can be related to memory behavior.
const (
	KernelIntSort      CPUKernel = "intsort"     // quicksort over simulated memory
	KernelMatMul       CPUKernel = "matmul"      // dense matrix multiply
	KernelPointerChase CPUKernel = "ptrchase"    // dependent loads, TLB-hostile
	KernelChecksum     CPUKernel = "checksum"    // streaming reduction
	KernelRLE          CPUKernel = "rle"         // compress-like byte scan
	KernelPureCompute  CPUKernel = "purecompute" // ALU only, no memory traffic
)

// AllCPUKernels lists the suite in canonical order.
func AllCPUKernels() []CPUKernel {
	return []CPUKernel{KernelIntSort, KernelMatMul, KernelPointerChase,
		KernelChecksum, KernelRLE, KernelPureCompute}
}

// CPUConfig parameterizes a CPU kernel run.
type CPUConfig struct {
	Kernel      CPUKernel
	WorkingSetK int // working set in KiB
	Iters       int // repetitions of the kernel
}

// CPUProgram builds the program body for a kernel configuration.
func CPUProgram(cfg CPUConfig) guestos.Program {
	switch cfg.Kernel {
	case KernelIntSort:
		return intSortProgram(cfg)
	case KernelMatMul:
		return matMulProgram(cfg)
	case KernelPointerChase:
		return pointerChaseProgram(cfg)
	case KernelChecksum:
		return checksumProgram(cfg)
	case KernelRLE:
		return rleProgram(cfg)
	case KernelPureCompute:
		return pureComputeProgram(cfg)
	}
	panic(fmt.Sprintf("workload: unknown kernel %q", cfg.Kernel))
}

func pagesFor(kib int) int {
	p := kib * 1024 / mach.PageSize
	if p < 1 {
		p = 1
	}
	return p
}

// intSortProgram sorts a pseudo-random array in simulated memory with
// iterative quicksort, charging compute per comparison.
func intSortProgram(cfg CPUConfig) guestos.Program {
	return func(e guestos.Env) {
		n := cfg.WorkingSetK * 1024 / 8
		base, err := e.Alloc(pagesFor(cfg.WorkingSetK))
		if err != nil {
			e.Exit(1)
		}
		for it := 0; it < cfg.Iters; it++ {
			// Fill with a deterministic pseudo-random pattern.
			x := uint64(88172645463325252 + it)
			for i := 0; i < n; i++ {
				x ^= x << 13
				x ^= x >> 7
				x ^= x << 17
				e.Store64(base+mach.Addr(i*8), x)
			}
			quicksortSim(e, base, 0, n-1)
			// Verify sortedness (and charge the scan).
			prev := e.Load64(base)
			for i := 1; i < n; i++ {
				v := e.Load64(base + mach.Addr(i*8))
				if v < prev {
					e.Exit(2)
				}
				prev = v
				e.Compute(1)
			}
		}
		e.Exit(0)
	}
}

func quicksortSim(e guestos.Env, base mach.Addr, lo, hi int) {
	type span struct{ lo, hi int }
	stack := []span{{lo, hi}}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if s.lo >= s.hi {
			continue
		}
		// Insertion sort for small spans.
		if s.hi-s.lo < 16 {
			for i := s.lo + 1; i <= s.hi; i++ {
				v := e.Load64(base + mach.Addr(i*8))
				j := i - 1
				for j >= s.lo {
					u := e.Load64(base + mach.Addr(j*8))
					e.Compute(1)
					if u <= v {
						break
					}
					e.Store64(base+mach.Addr((j+1)*8), u)
					j--
				}
				e.Store64(base+mach.Addr((j+1)*8), v)
			}
			continue
		}
		p := e.Load64(base + mach.Addr(((s.lo+s.hi)/2)*8))
		i, j := s.lo, s.hi
		for i <= j {
			for e.Load64(base+mach.Addr(i*8)) < p {
				i++
				e.Compute(1)
			}
			for e.Load64(base+mach.Addr(j*8)) > p {
				j--
				e.Compute(1)
			}
			if i <= j {
				vi := e.Load64(base + mach.Addr(i*8))
				vj := e.Load64(base + mach.Addr(j*8))
				e.Store64(base+mach.Addr(i*8), vj)
				e.Store64(base+mach.Addr(j*8), vi)
				i++
				j--
			}
		}
		stack = append(stack, span{s.lo, j}, span{i, s.hi})
	}
}

// matMulProgram multiplies two dense square matrices.
func matMulProgram(cfg CPUConfig) guestos.Program {
	return func(e guestos.Env) {
		// Three n×n uint64 matrices inside the working set.
		n := 8
		for (3*(n*2)*(n*2))*8 <= cfg.WorkingSetK*1024 {
			n *= 2
		}
		a, err := e.Alloc(pagesFor(n * n * 8 / 1024))
		if err != nil {
			e.Exit(1)
		}
		b, err := e.Alloc(pagesFor(n * n * 8 / 1024))
		if err != nil {
			e.Exit(1)
		}
		c, err := e.Alloc(pagesFor(n * n * 8 / 1024))
		if err != nil {
			e.Exit(1)
		}
		for i := 0; i < n*n; i++ {
			e.Store64(a+mach.Addr(i*8), uint64(i%97))
			e.Store64(b+mach.Addr(i*8), uint64(i%89))
		}
		for it := 0; it < cfg.Iters; it++ {
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					var sum uint64
					for k := 0; k < n; k++ {
						av := e.Load64(a + mach.Addr((i*n+k)*8))
						bv := e.Load64(b + mach.Addr((k*n+j)*8))
						sum += av * bv
						e.Compute(1)
					}
					e.Store64(c+mach.Addr((i*n+j)*8), sum)
				}
			}
		}
		e.Exit(0)
	}
}

// pointerChaseProgram builds a random cyclic permutation and chases it —
// one dependent load per step, maximal TLB pressure.
func pointerChaseProgram(cfg CPUConfig) guestos.Program {
	return func(e guestos.Env) {
		n := cfg.WorkingSetK * 1024 / 8
		base, err := e.Alloc(pagesFor(cfg.WorkingSetK))
		if err != nil {
			e.Exit(1)
		}
		// Sattolo's algorithm for a single cycle, using a local PRNG.
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		x := uint64(2463534242)
		for i := n - 1; i > 0; i-- {
			x ^= x << 13
			x ^= x >> 17
			x ^= x << 5
			j := int(x % uint64(i))
			idx[i], idx[j] = idx[j], idx[i]
		}
		for i := 0; i < n; i++ {
			e.Store64(base+mach.Addr(i*8), uint64(idx[i]))
		}
		steps := cfg.Iters * n
		cur := uint64(0)
		for s := 0; s < steps; s++ {
			cur = e.Load64(base + mach.Addr(cur*8))
			e.Compute(1)
		}
		e.Exit(0)
	}
}

// checksumProgram streams over the working set computing a rolling sum.
func checksumProgram(cfg CPUConfig) guestos.Program {
	return func(e guestos.Env) {
		bytes := cfg.WorkingSetK * 1024
		base, err := e.Alloc(pagesFor(cfg.WorkingSetK))
		if err != nil {
			e.Exit(1)
		}
		buf := make([]byte, 4096)
		for i := range buf {
			buf[i] = byte(i * 31)
		}
		for off := 0; off < bytes; off += len(buf) {
			e.WriteMem(base+mach.Addr(off), buf)
		}
		for it := 0; it < cfg.Iters; it++ {
			var sum uint64
			for off := 0; off < bytes; off += 8 {
				sum = sum*31 + e.Load64(base+mach.Addr(off))
				e.Compute(1)
			}
			_ = sum
		}
		e.Exit(0)
	}
}

// rleProgram does a compress-like run-length scan over byte data.
func rleProgram(cfg CPUConfig) guestos.Program {
	return func(e guestos.Env) {
		bytes := cfg.WorkingSetK * 1024
		base, err := e.Alloc(pagesFor(cfg.WorkingSetK))
		if err != nil {
			e.Exit(1)
		}
		pattern := make([]byte, 4096)
		for i := range pattern {
			pattern[i] = byte(i / 17) // runs of length 17
		}
		for off := 0; off < bytes; off += len(pattern) {
			e.WriteMem(base+mach.Addr(off), pattern)
		}
		chunk := make([]byte, 4096)
		for it := 0; it < cfg.Iters; it++ {
			runs := 0
			var last byte
			for off := 0; off < bytes; off += len(chunk) {
				e.ReadMem(base+mach.Addr(off), chunk)
				for _, b := range chunk {
					if b != last {
						runs++
						last = b
					}
				}
				e.Compute(uint64(len(chunk)) / 8)
			}
			_ = runs
		}
		e.Exit(0)
	}
}

// pureComputeProgram models an ALU-bound kernel: no memory traffic at all,
// the baseline where cloaking should cost essentially nothing.
func pureComputeProgram(cfg CPUConfig) guestos.Program {
	return func(e guestos.Env) {
		for it := 0; it < cfg.Iters; it++ {
			e.Compute(uint64(cfg.WorkingSetK) * 1024 / 4)
		}
		e.Exit(0)
	}
}
