package workload

// Workload programs exercise long syscall sequences; a silently failed
// close or seek would skew the workload shape without failing the run. The
// must helpers make any unexpected guest error fatal (the guest kernel
// surfaces the panic out of Run).

func must(err error) {
	if err != nil {
		panic("workload: unexpected guest error: " + err.Error())
	}
}

func must1[T any](v T, err error) T {
	must(err)
	return v
}

func must2[A, B any](a A, b B, err error) (A, B) {
	must(err)
	return a, b
}
