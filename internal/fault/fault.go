// Package fault is the simulator's deterministic fault-injection framework.
// A Plan declares, per injection site, how often each fault kind fires; an
// Injector turns the plan plus a seed into a concrete, fully reproducible
// fault schedule. Every component of the simulated machine consults the
// injector at its fault opportunities (disk transfers, swap traffic,
// hypercalls, integrity checks), so a single seed replays the exact same
// failure history — the property the E13 fault-sweep experiment and the
// quarantine tests are built on.
//
// The package depends only on the standard library (and uses none of its
// nondeterministic corners): internal/sim holds the injector on the World
// handle, so fault must sit below sim in the import graph. The injector
// carries its own xorshift64* stream rather than borrowing the world RNG —
// injection decisions must not perturb workload randomness, so a plan with
// all rates zero behaves bit-identically to no plan at all.
package fault

import "fmt"

// Site enumerates the machine's fault-injection points.
type Site uint8

// Injection sites, one per fault boundary the simulator models.
const (
	// SiteDiskRead: a block-device read (swap or filesystem).
	SiteDiskRead Site = iota
	// SiteDiskWrite: a block-device write.
	SiteDiskWrite
	// SiteSwapIn: the guest kernel's page-in path, after the block arrives
	// from the swap device (models kernel-side swap corruption; composes
	// with the Adversary.OnPageIn hook).
	SiteSwapIn
	// SiteSwapOut: the guest kernel's page-out path, before the block is
	// written (composes with Adversary.OnPageOut).
	SiteSwapOut
	// SiteHypercall: transient resource failure of a domain hypercall.
	SiteHypercall
	// SiteMetaTamper: the cloaking metadata record consulted for a decrypt
	// is corrupted in flight (detection then fires as an integrity
	// violation).
	SiteMetaTamper
	// SiteIntegrity: a cloak integrity check is forced to mismatch outright.
	SiteIntegrity
	// SiteTransfer: one frame of a live-migration checkpoint transfer (a
	// sealed record or a ciphertext page) crossing the inter-machine
	// channel. Fail loses the frame, Torn delivers a prefix then drops the
	// connection (both drive the bounded retry-then-typed-abort path), and
	// Corrupt delivers the frame silently damaged — detection is the
	// restore-side MAC/hash verification, never the channel.
	SiteTransfer
	// NumSites bounds the site enum; keep it last.
	NumSites
)

var siteNames = [...]string{
	"disk-read", "disk-write", "swap-in", "swap-out",
	"hypercall", "meta-tamper", "integrity", "transfer",
}

// String implements fmt.Stringer.
func (s Site) String() string {
	if int(s) < len(siteNames) {
		return siteNames[s]
	}
	//overlint:allow hotpathalloc -- Stringer fallback for unknown sites; known sites return a constant
	return fmt.Sprintf("site(%d)", uint8(s))
}

// Kind classifies what an injected fault does to the operation.
type Kind uint8

// Fault kinds.
const (
	// None: no fault at this opportunity.
	None Kind = iota
	// Fail: the operation reports an error and has no effect.
	Fail
	// Corrupt: the operation "succeeds" but its payload is silently
	// corrupted (bit flips in the transferred data or metadata).
	Corrupt
	// Torn: a write is partially applied before failing (torn write).
	Torn
)

var kindNames = [...]string{"none", "fail", "corrupt", "torn"}

// String implements fmt.Stringer.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	//overlint:allow hotpathalloc -- Stringer fallback for unknown kinds; known kinds return a constant
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Rate configures one injection site. Probabilities are per-mille per
// opportunity and are evaluated in the order fail, corrupt, torn from a
// single PRNG draw, so their sum must stay ≤ 1000.
type Rate struct {
	FailPerMille    int
	CorruptPerMille int
	TornPerMille    int
	// Max bounds how many faults this site may inject over the injector's
	// lifetime; 0 means unlimited. Deterministic either way.
	Max int
}

func (r Rate) enabled() bool {
	return r.FailPerMille > 0 || r.CorruptPerMille > 0 || r.TornPerMille > 0
}

// Plan is a complete fault schedule specification: one Rate per site. The
// zero value injects nothing.
type Plan struct {
	Rates [NumSites]Rate
}

// Enabled reports whether any site has a nonzero rate.
func (p Plan) Enabled() bool {
	for _, r := range p.Rates {
		if r.enabled() {
			return true
		}
	}
	return false
}

// Injection records one injected fault, in injection order.
type Injection struct {
	Seq  int // global injection ordinal (0-based)
	Site Site
	Kind Kind
}

// Injector evaluates a Plan deterministically. It must be seeded from the
// simulation seed (the overlint determinism analyzer enforces that call
// sites never feed it host randomness).
type Injector struct {
	plan   Plan
	state  uint64 // private xorshift64* stream
	counts [NumSites]int
	log    []Injection
}

// NewInjector builds an injector for plan whose schedule is a pure function
// of seed. Zero seeds are remapped exactly as in sim.NewRNG.
func NewInjector(seed uint64, plan Plan) *Injector {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &Injector{plan: plan, state: seed}
}

func (i *Injector) next() uint64 {
	x := i.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	i.state = x
	return x * 0x2545F4914F6CDD1D
}

// At consumes one fault opportunity at site and reports whether a fault
// fires, and of which kind. Sites with all-zero rates consume no PRNG state,
// so enabling one site leaves every other site's schedule untouched.
func (i *Injector) At(site Site) (Kind, bool) {
	r := i.plan.Rates[site]
	if !r.enabled() {
		return None, false
	}
	roll := int(i.next() % 1000)
	var kind Kind
	switch {
	case roll < r.FailPerMille:
		kind = Fail
	case roll < r.FailPerMille+r.CorruptPerMille:
		kind = Corrupt
	case roll < r.FailPerMille+r.CorruptPerMille+r.TornPerMille:
		kind = Torn
	default:
		return None, false
	}
	if r.Max > 0 && i.counts[site] >= r.Max {
		return None, false
	}
	i.counts[site]++
	i.log = append(i.log, Injection{Seq: len(i.log), Site: site, Kind: kind})
	return kind, true
}

// Corrupt deterministically flips one to three bytes of buf (no-op on an
// empty buffer). Used by Corrupt-kind faults to damage a payload in a way
// that is reproducible per seed.
func (i *Injector) Corrupt(buf []byte) {
	if len(buf) == 0 {
		return
	}
	n := 1 + int(i.next()%3)
	for j := 0; j < n; j++ {
		off := int(i.next() % uint64(len(buf)))
		buf[off] ^= byte(1 + i.next()%255)
	}
}

// TornLen picks the deterministic prefix length [1, n) a torn write applies
// before failing. n must be at least 2 to tear meaningfully; smaller values
// return 0 (nothing applied).
func (i *Injector) TornLen(n int) int {
	if n < 2 {
		return 0
	}
	return 1 + int(i.next()%uint64(n-1))
}

// Count reports how many faults were injected at site so far.
func (i *Injector) Count(site Site) int { return i.counts[site] }

// SiteActive reports whether site still has schedule left: a nonzero rate
// whose Max cap (if any) is not yet exhausted. Components that would be
// unsafe to reconfigure mid-schedule (e.g. re-homing a disk between worlds)
// use this to refuse with a typed error instead of silently splicing a
// half-delivered fault plan onto a different machine.
func (i *Injector) SiteActive(site Site) bool {
	r := i.plan.Rates[site]
	return r.enabled() && (r.Max == 0 || i.counts[site] < r.Max)
}

// Total reports how many faults were injected across all sites.
func (i *Injector) Total() int { return len(i.log) }

// Log returns a copy of the injected-fault history in injection order.
func (i *Injector) Log() []Injection {
	out := make([]Injection, len(i.log))
	copy(out, i.log)
	return out
}
