package fault

import "testing"

func sweepPlan() Plan {
	var p Plan
	p.Rates[SiteDiskRead] = Rate{FailPerMille: 100, CorruptPerMille: 50}
	p.Rates[SiteDiskWrite] = Rate{FailPerMille: 50, TornPerMille: 50}
	p.Rates[SiteHypercall] = Rate{FailPerMille: 200, Max: 3}
	return p
}

// TestScheduleDeterminism: the same seed and plan must produce the same
// fault schedule, byte for byte, over an identical opportunity sequence.
func TestScheduleDeterminism(t *testing.T) {
	run := func(seed uint64) []Injection {
		inj := NewInjector(seed, sweepPlan())
		for n := 0; n < 500; n++ {
			inj.At(SiteDiskRead)
			inj.At(SiteDiskWrite)
			inj.At(SiteHypercall)
		}
		return inj.Log()
	}
	a, b := run(7), run(7)
	if len(a) == 0 {
		t.Fatal("expected some injections over 1500 opportunities")
	}
	if len(a) != len(b) {
		t.Fatalf("schedule length diverged: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("injection %d diverged: %+v vs %+v", i, a[i], b[i])
		}
	}
	// A different seed must (for this plan size) give a different schedule.
	c := run(8)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("seeds 7 and 8 produced identical schedules")
	}
}

// TestZeroRateSitesConsumeNoState: opportunities at disabled sites must not
// advance the PRNG, so enabling one site never perturbs another's schedule.
func TestZeroRateSitesConsumeNoState(t *testing.T) {
	var p Plan
	p.Rates[SiteDiskRead] = Rate{FailPerMille: 500}

	run := func(interleave bool) []Injection {
		inj := NewInjector(3, p)
		for n := 0; n < 200; n++ {
			if interleave {
				// Disabled sites: must be free.
				inj.At(SiteSwapIn)
				inj.At(SiteIntegrity)
			}
			inj.At(SiteDiskRead)
		}
		return inj.Log()
	}
	plain, mixed := run(false), run(true)
	if len(plain) != len(mixed) {
		t.Fatalf("disabled sites perturbed schedule: %d vs %d injections", len(plain), len(mixed))
	}
	for i := range plain {
		if plain[i] != mixed[i] {
			t.Fatalf("injection %d diverged: %+v vs %+v", i, plain[i], mixed[i])
		}
	}
}

// TestMaxCap: a site's Max bounds its lifetime injections.
func TestMaxCap(t *testing.T) {
	inj := NewInjector(1, sweepPlan())
	for n := 0; n < 10000; n++ {
		inj.At(SiteHypercall)
	}
	if got := inj.Count(SiteHypercall); got != 3 {
		t.Fatalf("Max=3 cap not honored: %d injections", got)
	}
}

// TestZeroPlanNeverFires: the zero Plan is inert at every site.
func TestZeroPlanNeverFires(t *testing.T) {
	var p Plan
	if p.Enabled() {
		t.Fatal("zero plan reports Enabled")
	}
	inj := NewInjector(9, p)
	for s := Site(0); s < NumSites; s++ {
		for n := 0; n < 100; n++ {
			if k, ok := inj.At(s); ok || k != None {
				t.Fatalf("zero plan injected %v at %v", k, s)
			}
		}
	}
	if inj.Total() != 0 {
		t.Fatalf("zero plan logged %d injections", inj.Total())
	}
}

// TestCorruptMutates: Corrupt must change at least one byte, deterministically.
func TestCorruptMutates(t *testing.T) {
	mk := func() []byte {
		b := make([]byte, 64)
		for i := range b {
			b[i] = byte(i)
		}
		return b
	}
	a, b := mk(), mk()
	NewInjector(5, Plan{}).Corrupt(a)
	NewInjector(5, Plan{}).Corrupt(b)
	changed := false
	for i := range a {
		if a[i] != byte(i) {
			changed = true
		}
		if a[i] != b[i] {
			t.Fatalf("Corrupt not deterministic at byte %d", i)
		}
	}
	if !changed {
		t.Fatal("Corrupt left buffer untouched")
	}
}

// TestTornLen: bounds of the torn-write prefix.
func TestTornLen(t *testing.T) {
	inj := NewInjector(11, Plan{})
	if got := inj.TornLen(1); got != 0 {
		t.Fatalf("TornLen(1) = %d, want 0", got)
	}
	for n := 0; n < 200; n++ {
		got := inj.TornLen(4096)
		if got < 1 || got >= 4096 {
			t.Fatalf("TornLen(4096) = %d out of [1,4096)", got)
		}
	}
}

// TestStrings: names stay stable (spans and the E13 table render them).
func TestStrings(t *testing.T) {
	if SiteDiskRead.String() != "disk-read" || SiteIntegrity.String() != "integrity" {
		t.Fatal("site name drift")
	}
	if Fail.String() != "fail" || Torn.String() != "torn" {
		t.Fatal("kind name drift")
	}
	if int(NumSites) != len(siteNames) {
		t.Fatal("siteNames out of sync with Site enum")
	}
}
