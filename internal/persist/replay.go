package persist

import (
	"fmt"
	"sort"

	"overshadow/internal/cloak"
	"overshadow/internal/mach"
	"overshadow/internal/obs"
	"overshadow/internal/sim"
)

// RejectReason classifies why replay refused a record. Every reason is an
// expected, typed outcome — replay never panics on disk contents, whatever
// an adversary or a torn write left there.
type RejectReason uint8

// Rejection reasons.
const (
	// RejectBadMAC: the record's seal did not verify — torn write, sector
	// corruption, or a forgery attempt without the sealing key.
	RejectBadMAC RejectReason = iota + 1
	// RejectStaleEpoch: a validly sealed record from a superseded epoch —
	// e.g. pre-checkpoint log blocks, or a replayed-from-backup sector.
	RejectStaleEpoch
	// RejectSeqGap: sequence discontinuity — a record relocated to the
	// wrong slot, or the log resumed after damage.
	RejectSeqGap
	// RejectRollback: a Put carrying a version not newer than the one
	// already replayed — the freshness (anti-rollback) rule.
	RejectRollback
	// RejectBadKind: a sealed record whose kind is invalid in its position.
	RejectBadKind
	// RejectReadError: the device refused to return the sector (after
	// retries).
	RejectReadError
	// RejectNoAnchor: neither superblock verified; there is no committed
	// epoch to recover from.
	RejectNoAnchor
)

var reasonNames = [...]string{
	"", "bad-mac", "stale-epoch", "seq-gap", "rollback", "bad-kind",
	"read-error", "no-anchor",
}

// String implements fmt.Stringer.
func (r RejectReason) String() string {
	if int(r) < len(reasonNames) && r != 0 {
		return reasonNames[r]
	}
	return fmt.Sprintf("reason(%d)", uint8(r))
}

// Rejection is one refused record: a typed error value carrying where and
// why.
type Rejection struct {
	// Phase is "super", "checkpoint", or "log".
	Phase string
	// Block is the absolute device block holding the refused record.
	Block uint64
	// Slot is the record slot within the phase (sequence position).
	Slot uint64
	// Reason classifies the refusal.
	Reason RejectReason
}

// Error implements error.
func (r Rejection) Error() string {
	return fmt.Sprintf("persist: rejected %s record (block %d, slot %d): %s",
		r.Phase, r.Block, r.Slot, r.Reason)
}

// Result is the outcome of replaying a journal range: the reconstructed
// metadata table plus a full account of everything refused.
type Result struct {
	// Anchored reports whether a committed superblock verified; when false
	// the table is empty and Rejections explains why.
	Anchored bool
	// Epoch is the recovered committed epoch (0 when unanchored).
	Epoch uint32
	// CheckpointRecords / LogRecords count records accepted from each area.
	CheckpointRecords int
	LogRecords        int
	// Rejections lists every refused record in replay order.
	Rejections []Rejection
	// Table is the reconstructed page state.
	Table map[cloak.PageID]Entry
}

// Accepted reports the total number of accepted records.
func (r *Result) Accepted() int { return r.CheckpointRecords + r.LogRecords }

// RejectedBy counts rejections with the given reason.
func (r *Result) RejectedBy(reason RejectReason) int {
	n := 0
	for _, rej := range r.Rejections {
		if rej.Reason == reason {
			n++
		}
	}
	return n
}

// PageIDs returns the table's keys in deterministic (domain, resource,
// index) order; all recovery iteration goes through this.
func (r *Result) PageIDs() []cloak.PageID {
	ids := make([]cloak.PageID, 0, len(r.Table))
	// Sorted immediately below; no downstream bytes or iteration depend on
	// map order.
	//overlint:allow determinism -- keys are collected then sorted before use
	for id := range r.Table {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool { return pageIDLess(ids[a], ids[b]) })
	return ids
}

// replayReadAttempts bounds retries of a failing journal sector read,
// mirroring the guest pager's policy for swap reads.
const replayReadAttempts = 3

// readBlock reads one journal block with bounded retries.
func readBlock(disk *mach.Disk, blk uint64, dst []byte) error {
	var err error
	for try := 0; try < replayReadAttempts; try++ {
		if err = disk.Read(blk, dst); err == nil {
			return nil
		}
	}
	return err
}

// Replay walks the reserved range [base, base+blocks) of disk and
// reconstructs the metadata table committed there. It is the read half of
// the journal: superblock → checkpoint → log, in that order, refusing (with
// typed Rejections, never a panic) every record that fails its MAC, carries
// a stale epoch, breaks sequence contiguity, or rolls a version backwards.
func Replay(world *sim.World, disk *mach.Disk, base, blocks uint64, key [32]byte) *Result {
	res := &Result{Table: make(map[cloak.PageID]Entry)}
	start := world.Now()
	defer func() {
		world.CPU().EmitSpan(obs.KindPersist, "replay", uint64(res.Accepted()), world.Now()-start)
	}()
	if blocks < MinBlocks || base+blocks > disk.NumBlocks() {
		res.Rejections = append(res.Rejections,
			Rejection{Phase: "super", Block: base, Reason: RejectNoAnchor})
		return res
	}
	ckpt := (blocks - superSlots) / 4
	if ckpt == 0 {
		ckpt = 1
	}
	logStart := base + superSlots + 2*ckpt
	logBlocks := blocks - superSlots - 2*ckpt

	// Anchor: the higher committed epoch of the two superblock slots wins.
	var buf [mach.BlockSize]byte
	var super Record
	for slot := uint64(0); slot < superSlots; slot++ {
		if err := readBlock(disk, base+slot, buf[:]); err != nil {
			res.reject(world, Rejection{Phase: "super", Block: base + slot, Reason: RejectReadError})
			continue
		}
		r, ok := decode(buf[:RecordSize], &key)
		if !ok {
			if !isZero(buf[:RecordSize]) {
				res.reject(world, Rejection{Phase: "super", Block: base + slot, Reason: RejectBadMAC})
			}
			continue
		}
		if r.Kind != KindSuper || r.Block != superMagic || r.Version != FormatVersion ||
			r.Epoch == 0 || uint64(r.Epoch%2) != slot {
			res.reject(world, Rejection{Phase: "super", Block: base + slot, Reason: RejectBadKind})
			continue
		}
		if r.Epoch > super.Epoch {
			super = r
		}
	}
	if super.Epoch == 0 {
		res.reject(world, Rejection{Phase: "super", Block: base, Reason: RejectNoAnchor})
		return res
	}
	res.Anchored = true
	res.Epoch = super.Epoch

	// Checkpoint: entries verify independently — a torn snapshot block
	// costs exactly its own records, never the rest of the checkpoint.
	count := super.Seq
	slotBase := base + superSlots
	if super.Epoch%2 == 1 {
		slotBase += ckpt
	}
	for i := uint64(0); i < count; i++ {
		blk := slotBase + i/RecordsPerBlock
		off := (i % RecordsPerBlock) * RecordSize
		if off == 0 {
			if err := readBlock(disk, blk, buf[:]); err != nil {
				res.reject(world, Rejection{Phase: "checkpoint", Block: blk, Slot: i, Reason: RejectReadError})
				// Poison the buffer so stale data from the previous block
				// cannot be mistaken for this block's records.
				for j := range buf {
					buf[j] = 0xFF
				}
			}
		}
		r, ok := decode(buf[off:off+RecordSize], &key)
		if !ok {
			res.reject(world, Rejection{Phase: "checkpoint", Block: blk, Slot: i, Reason: RejectBadMAC})
			continue
		}
		if r.Kind != KindSnapshot || r.Epoch != super.Epoch {
			res.reject(world, Rejection{Phase: "checkpoint", Block: blk, Slot: i, Reason: RejectStaleEpoch})
			continue
		}
		if r.Seq != i {
			res.reject(world, Rejection{Phase: "checkpoint", Block: blk, Slot: i, Reason: RejectSeqGap})
			continue
		}
		e := Entry{Meta: cloak.Meta{IV: r.IV, Hash: r.Hash, Version: r.Version}, HasMeta: true}
		if r.Dev != DevNone {
			e.Dev = r.Dev
			e.Block = r.Block
			e.LocVersion = r.Version
			e.HasLoc = true
		}
		res.Table[r.ID] = e
		res.CheckpointRecords++
		world.CPU().ChargeCount(0, sim.CtrReplayAccepted)
	}

	// Log: strictly sequential; the first hole, tear, stale record, or
	// rollback ends replay (conservative valid-prefix rule — everything
	// after an anomaly is untrusted).
	for i := uint64(0); i < logBlocks*RecordsPerBlock; i++ {
		blk := logStart + i/RecordsPerBlock
		off := (i % RecordsPerBlock) * RecordSize
		if off == 0 {
			if err := readBlock(disk, blk, buf[:]); err != nil {
				res.reject(world, Rejection{Phase: "log", Block: blk, Slot: i, Reason: RejectReadError})
				return res
			}
		}
		slot := buf[off : off+RecordSize]
		if isZero(slot) {
			return res // clean end of log
		}
		r, ok := decode(slot, &key)
		if !ok {
			res.reject(world, Rejection{Phase: "log", Block: blk, Slot: i, Reason: RejectBadMAC})
			return res
		}
		if r.Epoch != super.Epoch {
			res.reject(world, Rejection{Phase: "log", Block: blk, Slot: i, Reason: RejectStaleEpoch})
			return res
		}
		if r.Seq != i {
			res.reject(world, Rejection{Phase: "log", Block: blk, Slot: i, Reason: RejectSeqGap})
			return res
		}
		switch r.Kind {
		case KindPut:
			if e, ok := res.Table[r.ID]; ok && e.HasMeta && r.Version <= e.Meta.Version {
				res.reject(world, Rejection{Phase: "log", Block: blk, Slot: i, Reason: RejectRollback})
				return res
			}
			e := res.Table[r.ID]
			e.Meta = cloak.Meta{IV: r.IV, Hash: r.Hash, Version: r.Version}
			e.HasMeta = true
			res.Table[r.ID] = e
		case KindLocate:
			e := res.Table[r.ID]
			e.Dev = r.Dev
			e.Block = r.Block
			e.LocVersion = r.Version
			e.HasLoc = true
			res.Table[r.ID] = e
		case KindDelete:
			delete(res.Table, r.ID)
		case KindDomainGone:
			// Deletion is commutative; iteration order cannot change the
			// resulting table.
			//overlint:allow determinism -- domain-wide deletion is commutative
			for id := range res.Table {
				if id.Domain == r.ID.Domain {
					delete(res.Table, id)
				}
			}
		default:
			res.reject(world, Rejection{Phase: "log", Block: blk, Slot: i, Reason: RejectBadKind})
			return res
		}
		res.LogRecords++
		world.CPU().ChargeCount(0, sim.CtrReplayAccepted)
	}
	return res
}

// reject records one refusal and counts it.
func (r *Result) reject(world *sim.World, rej Rejection) {
	r.Rejections = append(r.Rejections, rej)
	world.CPU().ChargeCount(0, sim.CtrReplayRejected)
}
