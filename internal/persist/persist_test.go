package persist

import (
	"bytes"
	"testing"

	"overshadow/internal/cloak"
	"overshadow/internal/fault"
	"overshadow/internal/mach"
	"overshadow/internal/sim"
)

func testWorld(seed uint64) *sim.World {
	return sim.NewWorld(sim.DefaultCostModel(), seed)
}

func pid(d, r, i uint64) cloak.PageID {
	return cloak.PageID{Domain: cloak.DomainID(d), Resource: cloak.ResourceID(r), Index: i}
}

func meta(v uint64) cloak.Meta {
	var m cloak.Meta
	m.Version = v
	for i := range m.IV {
		m.IV[i] = byte(v + uint64(i))
	}
	for i := range m.Hash {
		m.Hash[i] = byte(v*7 + uint64(i))
	}
	return m
}

const testBlocks = 64

func newTestJournal(t *testing.T, world *sim.World, opts Options) (*Journal, *mach.Disk, [32]byte) {
	t.Helper()
	disk := mach.NewDisk(world, 128+testBlocks)
	key := SealKey(7)
	j, err := NewJournal(world, disk, 128, testBlocks, key, opts)
	if err != nil {
		t.Fatalf("NewJournal: %v", err)
	}
	return j, disk, key
}

func TestRecordCodecRoundtrip(t *testing.T) {
	key := SealKey(42)
	r := Record{
		Kind: KindPut, Epoch: 9, Seq: 1234, ID: pid(3, 17, 88),
		Version: 5, Dev: DevSwap, Block: 4096,
	}
	copy(r.IV[:], bytes.Repeat([]byte{0xAB}, len(r.IV)))
	copy(r.Hash[:], bytes.Repeat([]byte{0xCD}, len(r.Hash)))
	var buf [RecordSize]byte
	encode(buf[:], r, &key)
	got, ok := decode(buf[:], &key)
	if !ok {
		t.Fatal("decode rejected a freshly sealed record")
	}
	if got != r {
		t.Fatalf("roundtrip mismatch:\n got %+v\nwant %+v", got, r)
	}
	// Any flipped byte must invalidate the seal.
	for _, off := range []int{0, offEpoch, offVersion, offIV, offHash, offMAC} {
		tam := buf
		tam[off] ^= 0x01
		if _, ok := decode(tam[:], &key); ok {
			t.Fatalf("decode accepted record with byte %d flipped", off)
		}
	}
	// The wrong key must reject everything.
	other := SealKey(43)
	if _, ok := decode(buf[:], &other); ok {
		t.Fatal("decode accepted a record under the wrong sealing key")
	}
}

func TestJournalReplayRoundtrip(t *testing.T) {
	world := testWorld(1)
	j, disk, key := newTestJournal(t, world, Options{})
	j.Put(pid(1, 1, 0), meta(1))
	j.Put(pid(1, 1, 1), meta(1))
	j.Locate(pid(1, 1, 0), DevSwap, 40, 1)
	j.Put(pid(1, 1, 0), meta(2)) // supersedes; location now stale
	j.Put(pid(2, 5, 9), meta(3))
	j.Delete(pid(1, 1, 1))

	rep := Replay(testWorld(2), disk, 128, testBlocks, key)
	if !rep.Anchored {
		t.Fatalf("replay not anchored: %v", rep.Rejections)
	}
	if len(rep.Rejections) != 0 {
		t.Fatalf("unexpected rejections: %v", rep.Rejections)
	}
	if len(rep.Table) != 2 {
		t.Fatalf("table size = %d, want 2", len(rep.Table))
	}
	e := rep.Table[pid(1, 1, 0)]
	if !e.HasMeta || e.Meta != meta(2) {
		t.Fatalf("page (1,1,0) meta = %+v, want version 2", e)
	}
	if !e.HasLoc || e.Block != 40 || e.LocVersion != 1 {
		t.Fatalf("page (1,1,0) location = %+v, want block 40 @v1", e)
	}
	if _, ok := rep.Table[pid(1, 1, 1)]; ok {
		t.Fatal("deleted page survived replay")
	}
	if e := rep.Table[pid(2, 5, 9)]; !e.HasMeta || e.Meta.Version != 3 {
		t.Fatalf("page (2,5,9) = %+v, want version 3", e)
	}
}

func TestJournalCheckpointRollover(t *testing.T) {
	world := testWorld(3)
	j, disk, key := newTestJournal(t, world, Options{CheckpointEvery: 8})
	// Enough appends to roll several checkpoints (and epochs).
	for v := uint64(1); v <= 5; v++ {
		for i := uint64(0); i < 10; i++ {
			j.Put(pid(1, 2, i), meta(v))
		}
	}
	j.DropDomain(cloak.DomainID(99)) // no-op: unknown domain appends nothing
	if j.Epoch() < 3 {
		t.Fatalf("epoch = %d, want several checkpoints", j.Epoch())
	}
	rep := Replay(testWorld(4), disk, 128, testBlocks, key)
	if !rep.Anchored || len(rep.Rejections) != 0 {
		t.Fatalf("replay: anchored=%v rejections=%v", rep.Anchored, rep.Rejections)
	}
	if len(rep.Table) != 10 {
		t.Fatalf("table size = %d, want 10", len(rep.Table))
	}
	for i := uint64(0); i < 10; i++ {
		if e := rep.Table[pid(1, 2, i)]; e.Meta.Version != 5 {
			t.Fatalf("page %d version = %d, want 5", i, e.Meta.Version)
		}
	}
	if rep.Epoch != j.Epoch() {
		t.Fatalf("replayed epoch %d != writer epoch %d", rep.Epoch, j.Epoch())
	}
}

func TestJournalDropDomain(t *testing.T) {
	world := testWorld(5)
	j, disk, key := newTestJournal(t, world, Options{})
	j.Put(pid(1, 1, 0), meta(1))
	j.Put(pid(2, 1, 0), meta(1))
	j.Put(pid(2, 1, 1), meta(1))
	j.DropDomain(cloak.DomainID(2))
	rep := Replay(testWorld(6), disk, 128, testBlocks, key)
	if len(rep.Table) != 1 {
		t.Fatalf("table size = %d, want 1", len(rep.Table))
	}
	if _, ok := rep.Table[pid(1, 1, 0)]; !ok {
		t.Fatal("surviving domain's page missing")
	}
}

// tornTail simulates a crash that left the final log record half-written.
func TestReplayRejectsTornTail(t *testing.T) {
	world := testWorld(7)
	j, disk, key := newTestJournal(t, world, Options{})
	for i := uint64(0); i < 5; i++ {
		j.Put(pid(1, 1, i), meta(1))
	}
	// Tear the most recent record: keep a prefix, trash the rest.
	blk := j.logStart + (j.seq-1)/RecordsPerBlock
	off := ((j.seq - 1) % RecordsPerBlock) * RecordSize
	img := disk.Peek(blk)
	for i := off + 40; i < off+RecordSize; i++ {
		img[i] ^= 0x5A
	}
	disk.Poke(blk, img)

	rep := Replay(testWorld(8), disk, 128, testBlocks, key)
	if !rep.Anchored {
		t.Fatal("torn tail must not unanchor the journal")
	}
	if rep.RejectedBy(RejectBadMAC) != 1 {
		t.Fatalf("rejections = %v, want one bad-mac", rep.Rejections)
	}
	// The intact prefix (4 of 5 puts) must survive.
	if rep.LogRecords != 4 {
		t.Fatalf("log records = %d, want 4", rep.LogRecords)
	}
	if len(rep.Table) != 4 {
		t.Fatalf("table size = %d, want 4", len(rep.Table))
	}
}

func TestReplayRejectsRollback(t *testing.T) {
	world := testWorld(9)
	j, disk, key := newTestJournal(t, world, Options{})
	j.Put(pid(1, 1, 0), meta(3))
	// Forge a validly sealed record that rolls the version back — what an
	// attacker with a stolen sealing key (or a replayed backup of a single
	// sector at the right position) would need to produce.
	old := meta(2)
	var buf [mach.BlockSize]byte
	copy(buf[:], disk.Peek(j.logStart))
	encode(buf[j.seq*RecordSize:(j.seq+1)*RecordSize], Record{
		Kind: KindPut, Epoch: j.epoch, Seq: j.seq, ID: pid(1, 1, 0),
		Version: old.Version, IV: old.IV, Hash: old.Hash,
	}, &key)
	disk.Poke(j.logStart, buf[:])

	rep := Replay(testWorld(10), disk, 128, testBlocks, key)
	if rep.RejectedBy(RejectRollback) != 1 {
		t.Fatalf("rejections = %v, want one rollback", rep.Rejections)
	}
	if e := rep.Table[pid(1, 1, 0)]; e.Meta.Version != 3 {
		t.Fatalf("version = %d after rollback attempt, want 3 (fresh)", e.Meta.Version)
	}
}

func TestReplayWrongKeyRecoversNothing(t *testing.T) {
	world := testWorld(11)
	j, disk, _ := newTestJournal(t, world, Options{})
	j.Put(pid(1, 1, 0), meta(1))
	rep := Replay(testWorld(12), disk, 128, testBlocks, SealKey(999))
	if rep.Anchored {
		t.Fatal("replay anchored under the wrong sealing key")
	}
	if len(rep.Table) != 0 {
		t.Fatal("entries recovered under the wrong sealing key")
	}
	if rep.RejectedBy(RejectNoAnchor) == 0 {
		t.Fatalf("rejections = %v, want a no-anchor", rep.Rejections)
	}
}

func TestReplayRejectsStaleEpochLog(t *testing.T) {
	world := testWorld(13)
	j, disk, key := newTestJournal(t, world, Options{CheckpointEvery: 4})
	// Three old-epoch records at the log head...
	for i := uint64(0); i < 3; i++ {
		j.Put(pid(1, 1, i), meta(1))
	}
	stale := disk.Peek(j.logStart)
	// ...the fourth append rolls a checkpoint (new epoch, log reset), and a
	// fifth lands at the new log head...
	j.Put(pid(1, 1, 3), meta(1))
	j.Put(pid(1, 1, 9), meta(1))
	// ...then an adversary re-serves the pre-checkpoint head sector.
	disk.Poke(j.logStart, stale)

	rep := Replay(testWorld(14), disk, 128, testBlocks, key)
	if !rep.Anchored {
		t.Fatal("stale log must not unanchor")
	}
	if rep.RejectedBy(RejectStaleEpoch) != 1 {
		t.Fatalf("rejections = %v, want one stale-epoch", rep.Rejections)
	}
	// The checkpointed state (pages 0..3) still recovers in full; only the
	// page behind the re-served sector is lost.
	if len(rep.Table) != 4 {
		t.Fatalf("table size = %d, want 4 checkpointed pages", len(rep.Table))
	}
}

func TestResumeCommitsFresherEpoch(t *testing.T) {
	world := testWorld(15)
	j, disk, key := newTestJournal(t, world, Options{})
	j.Put(pid(1, 1, 0), meta(4))
	was := j.Epoch()

	rep := Replay(testWorld(16), disk, 128, testBlocks, key)
	w2 := testWorld(17)
	j2, err := Resume(w2, disk, 128, testBlocks, key, Options{}, rep)
	if err != nil {
		t.Fatalf("Resume: %v", err)
	}
	if j2.Epoch() <= was {
		t.Fatalf("resumed epoch %d not fresher than %d", j2.Epoch(), was)
	}
	rep2 := Replay(testWorld(18), disk, 128, testBlocks, key)
	if rep2.Epoch != j2.Epoch() || len(rep2.Table) != 1 {
		t.Fatalf("post-resume replay: epoch=%d table=%d", rep2.Epoch, len(rep2.Table))
	}
	if e := rep2.Table[pid(1, 1, 0)]; e.Meta.Version != 4 {
		t.Fatalf("post-resume version = %d, want 4", e.Meta.Version)
	}
}

// TestJournalImageDeterministic pins the core reproducibility property: the
// same (seed, operation sequence) writes bit-identical bytes to the disk.
func TestJournalImageDeterministic(t *testing.T) {
	image := func() [][]byte {
		world := testWorld(21)
		j, disk, _ := newTestJournal(t, world, Options{CheckpointEvery: 6})
		for v := uint64(1); v <= 3; v++ {
			for i := uint64(0); i < 7; i++ {
				j.Put(pid(1, 3, i), meta(v))
				if i%2 == 0 {
					j.Locate(pid(1, 3, i), DevSwap, 10+i, v)
				}
			}
		}
		j.DropDomain(cloak.DomainID(1))
		var blocks [][]byte
		for b := uint64(128); b < 128+testBlocks; b++ {
			blocks = append(blocks, disk.Peek(b))
		}
		return blocks
	}
	a, b := image(), image()
	for i := range a {
		if !bytes.Equal(a[i], b[i]) {
			t.Fatalf("journal block %d differs between identical runs", i)
		}
	}
}

// TestJournalSelfHealsFailedWrite: an injected write failure leaves a stale
// tail block, but the next append rewrites the whole block, so nothing is
// lost unless the machine dies inside the window.
func TestJournalSelfHealsFailedWrite(t *testing.T) {
	world := testWorld(22)
	j, disk, key := newTestJournal(t, world, Options{})
	// Fail exactly one disk write, deterministically — armed after the
	// format so the failure lands on a log append, not the anchor commit.
	var plan fault.Plan
	plan.Rates[fault.SiteDiskWrite] = fault.Rate{FailPerMille: 1000, Max: 1}
	world.Fault = fault.NewInjector(22, plan)
	j.Put(pid(1, 1, 0), meta(1)) // this block write fails
	j.Put(pid(1, 1, 1), meta(1))
	j.Put(pid(1, 1, 2), meta(1))
	if j.WriteErrs() != 1 {
		t.Fatalf("write errors = %d, want exactly 1", j.WriteErrs())
	}
	rep := Replay(testWorld(23), disk, 128, testBlocks, key)
	if !rep.Anchored || len(rep.Table) != 3 {
		t.Fatalf("after self-heal: anchored=%v table=%d rejections=%v",
			rep.Anchored, len(rep.Table), rep.Rejections)
	}
}

func TestJournalWedgesWhenFull(t *testing.T) {
	world := testWorld(24)
	disk := mach.NewDisk(world, 64)
	key := SealKey(7)
	j, err := NewJournal(world, disk, 0, MinBlocks, key, Options{CheckpointEvery: 1 << 30})
	if err != nil {
		t.Fatalf("NewJournal: %v", err)
	}
	// MinBlocks geometry: 1-block checkpoint slots hold RecordsPerBlock
	// entries; exceed that and the journal must wedge, not panic or lie.
	for i := uint64(0); i < RecordsPerBlock*3; i++ {
		j.Put(pid(1, 1, i), meta(1))
	}
	if !j.Wedged() {
		t.Fatal("overfull journal did not wedge")
	}
}

// TestJournalZeroRateSitesConsumeNoPRNG: the journal adds many disk-site
// fault opportunities (every append and checkpoint block write). When those
// sites are zero-rate, they must consume no injector PRNG state, so an
// active site's schedule is identical with and without a journal running —
// the property that keeps existing fault-sweep goldens stable.
func TestJournalZeroRateSitesConsumeNoPRNG(t *testing.T) {
	var p fault.Plan
	p.Rates[fault.SiteSwapIn] = fault.Rate{FailPerMille: 500}
	run := func(withJournal bool) []fault.Injection {
		world := testWorld(31)
		world.Fault = fault.NewInjector(31, p)
		var j *Journal
		if withJournal {
			disk := mach.NewDisk(world, 64)
			var err error
			j, err = NewJournal(world, disk, 0, 32, SealKey(1), Options{CheckpointEvery: 16})
			if err != nil {
				t.Fatalf("NewJournal: %v", err)
			}
		}
		for n := uint64(0); n < 200; n++ {
			if j != nil {
				j.Put(pid(1, 1, n%8), meta(n+1))
			}
			world.CPU().InjectAt(fault.SiteSwapIn)
		}
		return world.Fault.Log()
	}
	plain, journaled := run(false), run(true)
	if len(plain) != len(journaled) {
		t.Fatalf("journal writes perturbed the schedule: %d vs %d injections", len(plain), len(journaled))
	}
	for i := range plain {
		if plain[i] != journaled[i] {
			t.Fatalf("injection %d diverged: %+v vs %+v", i, plain[i], journaled[i])
		}
	}
}

// TestJournalPerDomainQuota pins the resource-exhaustion containment
// contract: a domain that floods the journal past its entry quota wedges
// itself — typed counter, sealed state dropped, mutations ignored — while
// sibling domains, the shared log, and the global checkpoint keep working.
// Teardown recycles the wedged domain's budget.
func TestJournalPerDomainQuota(t *testing.T) {
	world := testWorld(9)
	j, disk, key := newTestJournal(t, world, Options{PerDomainEntries: 4})

	// The sibling journals comfortably under quota.
	for i := uint64(0); i < 3; i++ {
		j.Put(pid(1, 1, i), meta(i+1))
	}
	// The flooder pushes far past its quota: the fifth distinct page trips
	// the wedge, every later mutation is ignored.
	for i := uint64(0); i < 12; i++ {
		j.Put(pid(2, 1, i), meta(i+1))
	}
	if !j.DomainWedged(2) {
		t.Fatal("flooding domain not wedged")
	}
	if j.DomainWedged(1) {
		t.Fatal("sibling domain wedged by a neighbor's flood")
	}
	if j.Wedged() {
		t.Fatal("per-domain overflow wedged the shared journal")
	}
	if got := world.Stats.Get(sim.CtrJournalDomainWedged); got != 1 {
		t.Fatalf("CtrJournalDomainWedged = %d, want 1", got)
	}

	// The sibling keeps journaling after the wedge, and the global
	// checkpoint still quiesces.
	j.Put(pid(1, 1, 3), meta(9))
	j.Checkpoint()

	// Replay sees all four sibling entries and none of the flooder's: its
	// sealed state is gone (typed-unavailable), never silently stale.
	rep := Replay(testWorld(10), disk, 128, testBlocks, key)
	if !rep.Anchored {
		t.Fatal("replay lost its anchor")
	}
	for i := uint64(0); i < 4; i++ {
		if _, ok := rep.Table[pid(1, 1, i)]; !ok {
			t.Fatalf("sibling page %d missing after flood", i)
		}
	}
	for id := range rep.Table {
		if id.Domain == 2 {
			t.Fatalf("wedged domain's page %v survived replay", id)
		}
	}

	// Teardown releases the quota: a recycled domain ID journals again.
	j.DropDomain(cloak.DomainID(2))
	j.Put(pid(2, 2, 0), meta(1))
	if j.DomainWedged(2) {
		t.Fatal("DropDomain did not clear the wedge")
	}
	rep2 := Replay(testWorld(11), disk, 128, testBlocks, key)
	if _, ok := rep2.Table[pid(2, 2, 0)]; !ok {
		t.Fatal("recycled domain's page missing: budget not restored")
	}
}
