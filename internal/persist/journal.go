package persist

import (
	"fmt"
	"sort"

	"overshadow/internal/cloak"
	"overshadow/internal/mach"
	"overshadow/internal/obs"
	"overshadow/internal/sim"
)

// Options tunes the journal writer. The zero value is usable.
type Options struct {
	// CheckpointEvery forces a checkpoint after this many appended log
	// records (default 64). Smaller values shrink the replay window at the
	// price of more checkpoint I/O.
	CheckpointEvery int
	// Blocks sizes the reserved journal range when the embedding host
	// builds the device (default 256 blocks = 1 MiB).
	Blocks uint64
	// PerDomainEntries caps live journal entries per domain (0 = unlimited).
	// A domain that exceeds it — a hostile kernel flooding appends or
	// growing the metastore without bound — is wedged *individually*: its
	// sealed state is dropped (typed availability loss at replay) and its
	// further mutations are ignored, while every other domain keeps
	// journaling. Without the quota a single flooder fills the reserved
	// range and wedges the shared journal for all domains at once.
	PerDomainEntries int
}

// Geometry describes the reserved block range:
//
//	base+0              superblock slot A (committed by even epochs)
//	base+1              superblock slot B (committed by odd epochs)
//	base+2 ..           checkpoint slot A (ckptBlocks blocks, even epochs)
//	.. +ckptBlocks      checkpoint slot B (ckptBlocks blocks, odd epochs)
//	rest                append-only log area
//
// Alternating slots mean a crash mid-checkpoint can never destroy the last
// committed checkpoint: the new epoch writes into the other slot and only
// becomes real when its superblock lands.
const (
	superSlots = 2
	// MinBlocks is the smallest usable journal: two superblocks, two
	// one-block checkpoint slots, and at least one log block.
	MinBlocks = superSlots + 2 + 1
)

// ErrJournalFull is returned (and counted) when the persisted state no
// longer fits the reserved range; the journal wedges — an availability
// loss, never an integrity one.
var ErrJournalFull = fmt.Errorf("persist: journal wedged: reserved range full")

// Journal is the writer half: the VMM appends a sealed record for every
// metadata mutation and periodically checkpoints the full table. All I/O
// goes through the (fault-injectable) disk, so torn and failed journal
// writes are part of the deterministic fault schedule.
type Journal struct {
	world *sim.World
	disk  *mach.Disk
	key   [32]byte
	opts  Options

	base       uint64 // first reserved block
	blocks     uint64 // reserved range length
	ckptBlocks uint64 // blocks per checkpoint slot
	logStart   uint64 // absolute block index of the log area
	logBlocks  uint64

	// table is the writer's in-memory truth: what a fully successful replay
	// of the on-disk journal should reconstruct.
	table map[cloak.PageID]Entry

	epoch     uint32               // current committed epoch
	seq       uint64               // next log record sequence number within epoch
	sinceCkpt int                  // appends since the last checkpoint
	tail      [mach.BlockSize]byte // image of the current tail log block
	tailBlock uint64               // absolute index of the tail block, 0 = none

	wedged    bool
	writeErrs int

	// Per-domain quota state (allocated only when the quota is set).
	domainCount  map[cloak.DomainID]int
	domainWedged map[cloak.DomainID]bool

	// Marks: the simulated cycle at which each append / checkpoint began.
	// E14 derives its mid-append and mid-checkpoint crash points from these.
	appendMarks []sim.Cycles
	ckptMarks   []sim.Cycles
}

// newJournal builds the writer without touching the disk.
func newJournal(world *sim.World, disk *mach.Disk, base, blocks uint64, key [32]byte, opts Options) (*Journal, error) {
	if blocks < MinBlocks {
		return nil, fmt.Errorf("persist: journal needs >= %d blocks, got %d", MinBlocks, blocks)
	}
	if base+blocks > disk.NumBlocks() {
		return nil, fmt.Errorf("persist: journal range [%d,%d) beyond device (%d blocks)",
			base, base+blocks, disk.NumBlocks())
	}
	if opts.CheckpointEvery <= 0 {
		opts.CheckpointEvery = 64
	}
	ckpt := (blocks - superSlots) / 4
	if ckpt == 0 {
		ckpt = 1
	}
	j := &Journal{
		world:      world,
		disk:       disk,
		key:        key,
		opts:       opts,
		base:       base,
		blocks:     blocks,
		ckptBlocks: ckpt,
		logStart:   base + superSlots + 2*ckpt,
		logBlocks:  blocks - superSlots - 2*ckpt,
		table:      make(map[cloak.PageID]Entry),
	}
	if opts.PerDomainEntries > 0 {
		j.domainCount = make(map[cloak.DomainID]int)
		j.domainWedged = make(map[cloak.DomainID]bool)
	}
	return j, nil
}

// NewJournal formats the reserved range [base, base+blocks) of disk and
// returns a writer sealed with key. Formatting writes an initial empty
// checkpoint (epoch 1) so replay always has an anchor superblock.
func NewJournal(world *sim.World, disk *mach.Disk, base, blocks uint64, key [32]byte, opts Options) (*Journal, error) {
	j, err := newJournal(world, disk, base, blocks, key, opts)
	if err != nil {
		return nil, err
	}
	// Epoch 0 is never committed; the format checkpoint commits epoch 1 so a
	// replayed superblock with epoch 0 is unambiguously invalid.
	j.checkpoint()
	return j, nil
}

// Resume reopens a journal over a replayed table: it adopts the recovered
// state and immediately re-seals it under a strictly fresher epoch, so the
// next replay anchors on the recovered state rather than the crashed tail —
// and a rollback to the pre-crash superblock is detectably stale.
func Resume(world *sim.World, disk *mach.Disk, base, blocks uint64, key [32]byte, opts Options, rep *Result) (*Journal, error) {
	j, err := newJournal(world, disk, base, blocks, key, opts)
	if err != nil {
		return nil, err
	}
	j.epoch = rep.Epoch // next checkpoint commits rep.Epoch+1
	j.table = make(map[cloak.PageID]Entry, len(rep.Table))
	for _, id := range rep.PageIDs() {
		j.table[id] = rep.Table[id]
		if j.domainCount != nil {
			j.domainCount[id.Domain]++
		}
	}
	j.checkpoint()
	return j, nil
}

// Len reports the number of live page entries.
func (j *Journal) Len() int { return len(j.table) }

// Wedged reports whether the journal stopped persisting (range overflow).
func (j *Journal) Wedged() bool { return j.wedged }

// DomainWedged reports whether domain d individually exceeded its quota and
// lost journaling (its sealed state is gone; siblings are unaffected).
func (j *Journal) DomainWedged(d cloak.DomainID) bool { return j.domainWedged[d] }

// admit applies the per-domain quota to a mutation of id's entry, reporting
// whether it may proceed. Growth beyond the quota wedges the offending
// domain only: its state is dropped and further mutations are ignored.
func (j *Journal) admit(id cloak.PageID) bool {
	if j.opts.PerDomainEntries <= 0 {
		return true
	}
	d := id.Domain
	if j.domainWedged[d] {
		return false
	}
	if _, ok := j.table[id]; ok {
		return true // updating a live entry adds no growth
	}
	if j.domainCount[d] >= j.opts.PerDomainEntries {
		j.wedgeDomain(d)
		return false
	}
	j.domainCount[d]++
	return true
}

// wedgeDomain contains a quota overflow to its domain: drop the domain's
// sealed state (its pages become typed-unavailable at replay, never silently
// stale) and stop accepting its mutations. The shared journal — and every
// sibling domain — keeps running.
func (j *Journal) wedgeDomain(d cloak.DomainID) {
	j.domainWedged[d] = true
	j.domainCount[d] = 0
	j.world.CPU().ChargeCount(0, sim.CtrJournalDomainWedged)
	found := false
	// Deletion is commutative; only the single KindDomainGone record below
	// is serialized, so iteration order cannot reach any byte on disk.
	//overlint:allow determinism,hotpathalloc -- domain-wide deletion is commutative; quota containment sweep
	for id := range j.table {
		if id.Domain == d {
			delete(j.table, id)
			found = true
		}
	}
	if found {
		j.append(Record{Kind: KindDomainGone, ID: cloak.PageID{Domain: d}})
	}
}

// WriteErrs reports how many journal block writes failed (injected faults).
func (j *Journal) WriteErrs() int { return j.writeErrs }

// Epoch reports the current committed epoch.
func (j *Journal) Epoch() uint32 { return j.epoch }

// Range reports the reserved block range, for replay after a crash.
func (j *Journal) Range() (base, blocks uint64) { return j.base, j.blocks }

// Marks returns the simulated cycles at which appends and checkpoints
// began. Slices are live views; callers must not mutate them.
func (j *Journal) Marks() (appends, checkpoints []sim.Cycles) {
	return j.appendMarks, j.ckptMarks
}

// TableEntry pairs a page identity with its live journal entry, for callers
// that need the writer's full in-memory table (live-migration capture walks
// it to enumerate a domain's sealed pages).
type TableEntry struct {
	ID    cloak.PageID
	Entry Entry
}

// Entries returns a copy of the live table in deterministic PageID order.
func (j *Journal) Entries() []TableEntry {
	//overlint:allow hotpathalloc -- migration-capture snapshot, not per-append work
	out := make([]TableEntry, 0, len(j.table))
	//overlint:allow determinism,hotpathalloc -- entries are collected then sorted before use
	for id, e := range j.table {
		out = append(out, TableEntry{ID: id, Entry: e})
	}
	//overlint:allow hotpathalloc -- snapshot sort; once per capture
	sort.Slice(out, func(a, b int) bool { return pageIDLess(out[a].ID, out[b].ID) })
	return out
}

// Put journals a page's new metadata record.
func (j *Journal) Put(id cloak.PageID, m cloak.Meta) {
	if !j.admit(id) {
		return
	}
	e := j.table[id]
	e.Meta = m
	e.HasMeta = true
	j.table[id] = e
	j.append(Record{Kind: KindPut, ID: id, Version: m.Version, IV: m.IV, Hash: m.Hash})
}

// Locate journals where the ciphertext of a page version landed on stable
// storage. The location is a hint from the untrusted kernel: replay
// re-verifies the payload against the sealed hash, so a wrong location can
// only cost availability.
func (j *Journal) Locate(id cloak.PageID, dev uint8, block, version uint64) {
	if !j.admit(id) {
		return
	}
	e := j.table[id]
	e.Dev = dev
	e.Block = block
	e.LocVersion = version
	e.HasLoc = true
	j.table[id] = e
	j.append(Record{Kind: KindLocate, ID: id, Version: version, Dev: dev, Block: block})
}

// Delete journals the discard of a page's metadata (resource release). The
// ciphertext becomes permanently undecryptable — cryptographic erasure.
func (j *Journal) Delete(id cloak.PageID) {
	if _, ok := j.table[id]; !ok {
		return
	}
	delete(j.table, id)
	if j.domainCount != nil {
		j.domainCount[id.Domain]--
	}
	j.append(Record{Kind: KindDelete, ID: id})
}

// DropDomain journals the teardown of an entire domain (exit, quarantine).
func (j *Journal) DropDomain(d cloak.DomainID) {
	found := false
	// Deletion is commutative, so map iteration order cannot influence the
	// resulting table or any bytes written (the single record below encodes
	// only the domain ID).
	//overlint:allow determinism,hotpathalloc -- domain-wide deletion is commutative; teardown sweep, no serialized bytes depend on this order
	for id := range j.table {
		if id.Domain == d {
			delete(j.table, id)
			found = true
		}
	}
	if j.domainCount != nil {
		// Teardown releases the domain's quota slots (and any wedge marker):
		// a recycled domain ID starts with a clean budget.
		delete(j.domainCount, d)
		delete(j.domainWedged, d)
	}
	if !found {
		return
	}
	j.append(Record{Kind: KindDomainGone, ID: cloak.PageID{Domain: d}})
}

// Checkpoint forces a checkpoint (used at clean shutdown to quiesce).
func (j *Journal) Checkpoint() { j.checkpoint() }

// append seals one record into the log, writing the whole tail block each
// time. Full-block rewrites make the log self-healing: a failed or torn
// write leaves a bad block image, but the next append rewrites the same
// block with every accumulated record, so only a crash in the window
// between tears exposes the damage to replay.
func (j *Journal) append(r Record) {
	if j.wedged {
		return
	}
	j.appendMarks = append(j.appendMarks, j.world.Now())
	slot := j.seq
	if slot >= j.logBlocks*RecordsPerBlock {
		// Log full: fold everything into a checkpoint, which resets the log.
		j.checkpoint()
		if j.wedged {
			return
		}
		slot = j.seq
	}
	r.Epoch = j.epoch
	r.Seq = j.seq
	blk := j.logStart + slot/RecordsPerBlock
	if blk != j.tailBlock {
		for i := range j.tail {
			j.tail[i] = 0
		}
		j.tailBlock = blk
	}
	off := (slot % RecordsPerBlock) * RecordSize
	encode(j.tail[off:off+RecordSize], r, &j.key)
	start := j.world.Now()
	err := j.disk.Write(blk, j.tail[:])
	j.world.CPU().ChargeCount(0, sim.CtrJournalAppend)
	j.world.CPU().EmitSpan(obs.KindPersist, "append", uint64(r.Kind), j.world.Now()-start)
	if err != nil {
		// The record stays in the tail image; the next append (or
		// checkpoint) rewrites the block. Until then the on-disk tail is
		// torn or stale — exactly the state replay must tolerate.
		j.writeErrs++
		j.world.CPU().ChargeCount(0, sim.CtrJournalWriteErr)
	}
	j.seq++
	j.sinceCkpt++
	if j.sinceCkpt >= j.opts.CheckpointEvery {
		j.checkpoint()
	}
}

// checkpoint writes the full table into the inactive slot and commits it
// with a new-epoch superblock. Only the superblock write makes the new
// epoch real; a crash at any earlier point leaves the previous epoch's
// checkpoint + log authoritative.
func (j *Journal) checkpoint() {
	if j.wedged {
		return
	}
	j.ckptMarks = append(j.ckptMarks, j.world.Now())
	//overlint:allow hotpathalloc -- checkpoint is periodic and amortized over many appends
	ids := make([]cloak.PageID, 0, len(j.table))
	// Keys are sorted before any byte is serialized; the encoded checkpoint
	// is a pure function of the table contents. Location-only entries (a
	// Locate that never saw a Put) carry no sealed metadata and are dropped.
	//overlint:allow determinism,hotpathalloc -- checkpoint sweep; keys are collected then sorted before serialization
	for id, e := range j.table {
		if e.HasMeta {
			ids = append(ids, id)
		}
	}
	//overlint:allow hotpathalloc -- checkpoint sort; the boxing and closure are amortized over many appends
	sort.Slice(ids, func(a, b int) bool { return pageIDLess(ids[a], ids[b]) })
	n := uint64(len(ids))
	if n > j.ckptBlocks*RecordsPerBlock {
		j.wedged = true
		j.world.CPU().ChargeCount(0, sim.CtrJournalWedged)
		return
	}
	newEpoch := j.epoch + 1

	start := j.world.Now()
	slotBase := j.base + superSlots
	if newEpoch%2 == 1 {
		slotBase += j.ckptBlocks
	}
	var img [mach.BlockSize]byte
	written := uint64(0)
	for b := uint64(0); written < n; b++ {
		for i := range img {
			img[i] = 0
		}
		for s := uint64(0); s < RecordsPerBlock && written < n; s++ {
			e := j.table[ids[written]]
			encode(img[s*RecordSize:(s+1)*RecordSize], Record{
				Kind:    KindSnapshot,
				Epoch:   newEpoch,
				Seq:     written,
				ID:      ids[written],
				Version: e.Meta.Version,
				IV:      e.Meta.IV,
				Hash:    e.Meta.Hash,
				Dev:     snapshotDev(e),
				Block:   e.Block,
			}, &j.key)
			written++
		}
		if err := j.disk.Write(slotBase+b, img[:]); err != nil {
			// A bad snapshot block costs exactly its records at replay
			// (entries are validated independently); keep going.
			j.writeErrs++
			j.world.CPU().ChargeCount(0, sim.CtrJournalWriteErr)
		}
	}
	// Commit: the superblock names the new epoch and its checkpoint length.
	for i := range img {
		img[i] = 0
	}
	encode(img[:RecordSize], Record{
		Kind:    KindSuper,
		Epoch:   newEpoch,
		Seq:     n,
		Version: FormatVersion,
		Block:   superMagic,
	}, &j.key)
	superBlk := j.base + uint64(newEpoch%2)
	if err := j.disk.Write(superBlk, img[:]); err != nil {
		// Commit failed: the medium still names the old epoch. Everything
		// appended under newEpoch will read as stale — a bounded data loss
		// window, surfaced as typed rejections at replay, never a panic.
		j.writeErrs++
		j.world.CPU().ChargeCount(0, sim.CtrJournalWriteErr)
	}
	j.epoch = newEpoch
	j.seq = 0
	j.sinceCkpt = 0
	j.tailBlock = 0
	j.world.CPU().ChargeCount(0, sim.CtrJournalCheckpoint)
	j.world.CPU().EmitSpan(obs.KindPersist, "checkpoint", n, j.world.Now()-start)
}

// snapshotDev encodes an entry's location validity into the dev byte. A
// snapshot record has one Version field, so it can only carry a location
// that matches the current metadata version; a stale location (the page was
// re-encrypted after its last persist) is useless for recovery and is
// dropped here rather than misrepresented.
func snapshotDev(e Entry) uint8 {
	if !e.HasLoc || !e.HasMeta || e.LocVersion != e.Meta.Version {
		return DevNone
	}
	return e.Dev
}

// pageIDLess orders PageIDs (domain, resource, index) for deterministic
// serialization and reporting.
func pageIDLess(a, b cloak.PageID) bool {
	if a.Domain != b.Domain {
		return a.Domain < b.Domain
	}
	if a.Resource != b.Resource {
		return a.Resource < b.Resource
	}
	return a.Index < b.Index
}
