// Package persist is the VMM's crash-consistency layer: a sealed,
// append-only metadata journal written through the simulated block device,
// plus the replay path that rebuilds cloaking metadata after a whole-machine
// crash.
//
// The paper's protection contract spans OS restarts: cloaked pages on
// untrusted storage stay secret and tamper-evident because the VMM — never
// the guest — owns the (IV, hash, version) records. This package makes that
// half of the contract real for the simulation. Every metadata mutation the
// VMM performs is appended to a reserved block range of the (fault-
// injectable, untrusted) disk as a fixed-width record sealed with a MAC
// under a VMM-private key; periodic checkpoints bound replay time. After a
// crash, Replay walks superblock → checkpoint → log, rejecting every record
// that fails its MAC (torn or corrupted), carries a stale epoch, breaks
// sequence contiguity, or rolls a page version backwards — each rejection is
// a typed value, never a panic — and returns the surviving metadata table.
//
// Everything here is deterministic: records are fixed-width little-endian
// (no map iteration feeds an encoder — overlint's determinism analyzer
// enforces this for the whole package), the sealing key is a pure function
// of the simulation seed, and all I/O costs are charged to the simulated
// clock through mach.Disk. A given (seed, workload, crash cycle) names one
// exact disk image and one exact recovery outcome.
package persist

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"fmt"

	"overshadow/internal/cloak"
	"overshadow/internal/mach"
)

// RecordSize is the fixed on-disk size of every journal record. Fixed-width
// records make torn writes detectable by construction: a record is either
// fully persisted (MAC verifies) or it is not a record.
const RecordSize = 128

// RecordsPerBlock is how many records one disk block holds.
const RecordsPerBlock = mach.BlockSize / RecordSize

// MACSize is the truncated HMAC-SHA256 length stored per record.
const MACSize = 24

// FormatVersion identifies the on-disk layout; bumped on incompatible
// changes so replay can reject a journal written by a different layout
// instead of misparsing it.
const FormatVersion = 1

// superMagic marks a superblock record (stored in the Block field, where a
// log record would keep a device block number).
const superMagic = 0x4F56534A524E4C31 // "OVSJRNL1"

// Kind discriminates journal record types.
type Kind uint8

// Record kinds.
const (
	// KindInvalid: the zero kind; an all-zero record slot means "end of log".
	KindInvalid Kind = iota
	// KindPut: a page's (IV, hash, version) record was written or replaced.
	KindPut
	// KindLocate: the ciphertext of a page version was persisted at a stable
	// device location (the untrusted kernel reported where it put it; the
	// location is only a hint — recovery re-verifies the payload hash, so a
	// lying kernel can cost availability, never integrity).
	KindLocate
	// KindDelete: a page's metadata was discarded (resource release). The
	// cloaked data becomes permanently unrecoverable, by design.
	KindDelete
	// KindDomainGone: every record of a domain was discarded (domain
	// teardown or quarantine).
	KindDomainGone
	// KindSnapshot: one entry of a checkpoint: the page's full current state
	// (metadata plus last known ciphertext location).
	KindSnapshot
	// KindSuper: a superblock: commits an epoch and its checkpoint length.
	KindSuper
)

var kindNames = [...]string{
	"invalid", "put", "locate", "delete", "domain-gone", "snapshot", "super",
}

// String implements fmt.Stringer.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Device codes for KindLocate/KindSnapshot locations.
const (
	// DevNone: no known ciphertext location.
	DevNone uint8 = 0
	// DevSwap: a block on the swap device.
	DevSwap uint8 = 1
)

// Record is the in-memory form of one journal record. All fields are
// fixed-width on disk; see encode for the exact layout.
type Record struct {
	Kind    Kind
	Epoch   uint32
	Seq     uint64
	ID      cloak.PageID
	Version uint64
	IV      [cloak.IVSize]byte
	Hash    [cloak.HashSize]byte
	Dev     uint8
	Block   uint64
}

// On-disk layout (little-endian, offsets in bytes):
//
//	  0  kind (1)         1..2 pad        3  dev (1)
//	  4  epoch (4)        8  seq (8)
//	 16  domain (4)      20  resource (8) 28  index (8)
//	 36  version (8)
//	 44  IV (16)         60  hash (32)
//	 92  pad (4)         96  block (8)
//	104  MAC (24) — HMAC-SHA256(key, bytes 0..104) truncated
const (
	offKind    = 0
	offDev     = 3
	offEpoch   = 4
	offSeq     = 8
	offDomain  = 16
	offRes     = 20
	offIndex   = 28
	offVersion = 36
	offIV      = 44
	offHash    = 60
	offBlock   = 96
	offMAC     = 104
)

// seal computes the truncated record MAC over the first offMAC bytes.
func seal(key *[32]byte, body []byte) [MACSize]byte {
	//overlint:allow hotpathalloc -- keyed-MAC state is per-seal by construction; sealing rides the journal append, not the dispatch loop
	m := hmac.New(sha256.New, key[:])
	m.Write(body)
	var out [MACSize]byte
	sum := m.Sum(nil)
	copy(out[:], sum[:MACSize])
	return out
}

// encode serializes r into dst (len >= RecordSize) and seals it. The layout
// is pure fixed-width stores: nothing here may depend on map iteration or
// any other source of run-to-run variation.
func encode(dst []byte, r Record, key *[32]byte) {
	for i := 0; i < RecordSize; i++ {
		dst[i] = 0
	}
	dst[offKind] = byte(r.Kind)
	dst[offDev] = r.Dev
	binary.LittleEndian.PutUint32(dst[offEpoch:], r.Epoch)
	binary.LittleEndian.PutUint64(dst[offSeq:], r.Seq)
	binary.LittleEndian.PutUint32(dst[offDomain:], uint32(r.ID.Domain))
	binary.LittleEndian.PutUint64(dst[offRes:], uint64(r.ID.Resource))
	binary.LittleEndian.PutUint64(dst[offIndex:], r.ID.Index)
	binary.LittleEndian.PutUint64(dst[offVersion:], r.Version)
	copy(dst[offIV:], r.IV[:])
	copy(dst[offHash:], r.Hash[:])
	binary.LittleEndian.PutUint64(dst[offBlock:], r.Block)
	mac := seal(key, dst[:offMAC])
	copy(dst[offMAC:], mac[:])
}

// isZero reports whether the slot has never been written (end of log).
func isZero(src []byte) bool {
	for _, b := range src[:RecordSize] {
		if b != 0 {
			return false
		}
	}
	return true
}

// decode parses and verifies one record slot. ok is false when the MAC does
// not verify — a torn, corrupted, or forged record; the caller classifies.
func decode(src []byte, key *[32]byte) (Record, bool) {
	want := seal(key, src[:offMAC])
	if !hmac.Equal(want[:], src[offMAC:offMAC+MACSize]) {
		return Record{}, false
	}
	var r Record
	r.Kind = Kind(src[offKind])
	r.Dev = src[offDev]
	r.Epoch = binary.LittleEndian.Uint32(src[offEpoch:])
	r.Seq = binary.LittleEndian.Uint64(src[offSeq:])
	r.ID = cloak.PageID{
		Domain:   cloak.DomainID(binary.LittleEndian.Uint32(src[offDomain:])),
		Resource: cloak.ResourceID(binary.LittleEndian.Uint64(src[offRes:])),
		Index:    binary.LittleEndian.Uint64(src[offIndex:]),
	}
	r.Version = binary.LittleEndian.Uint64(src[offVersion:])
	copy(r.IV[:], src[offIV:])
	copy(r.Hash[:], src[offHash:])
	r.Block = binary.LittleEndian.Uint64(src[offBlock:])
	return r, true
}

// SealKey derives the VMM's journal sealing key from the simulation seed.
// In a real deployment this key would live in the VMM's sealed storage
// (e.g. TPM-bound); here it is a pure function of the seed so that a
// (seed, workload) pair names one exact journal image. Rebooting with a
// different seed therefore models losing the sealing key: every record
// fails its MAC and recovery yields nothing — which is the correct failure
// direction (availability loss, never a forged acceptance).
func SealKey(seed uint64) [32]byte {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], seed)
	h := sha256.New()
	h.Write([]byte("overshadow-journal-seal/v1:"))
	h.Write(buf[:])
	var key [32]byte
	h.Sum(key[:0])
	return key
}

// Entry is the recovery-relevant state of one cloaked page: its current
// metadata record plus the last reported stable ciphertext location. The
// journal writer maintains this table as it appends; Replay rebuilds the
// same table from disk.
type Entry struct {
	Meta    cloak.Meta
	HasMeta bool
	// Dev/Block locate the ciphertext persisted for LocVersion. Only
	// meaningful when HasLoc; recovery trusts it for availability only.
	Dev        uint8
	Block      uint64
	LocVersion uint64
	HasLoc     bool
}
