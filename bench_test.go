package overshadow_test

// One Go benchmark per experiment in DESIGN.md's index. Each bench runs the
// experiment at quick scale and reports the headline *simulated* metrics via
// b.ReportMetric, so `go test -bench=. -benchmem` regenerates every table's
// shape. `cmd/overbench -full` prints the full-scale tables.

import (
	"testing"

	"overshadow/internal/harness"
)

func benchOpts() harness.Options { return harness.Options{Quick: true, Seed: 1} }

// runExperiment executes the experiment once per b.N and reports rows.
func runExperiment(b *testing.B, id string, metrics func(*harness.Table, *testing.B)) {
	b.Helper()
	exp, ok := harness.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	var tab *harness.Table
	for i := 0; i < b.N; i++ {
		tab = exp.Run(benchOpts())
	}
	if metrics != nil {
		metrics(tab, b)
	}
	b.Logf("\n%s", tab)
}

func BenchmarkE1_Microbenchmarks(b *testing.B) {
	runExperiment(b, "E1", func(t *harness.Table, b *testing.B) {
		for _, r := range t.Rows {
			switch r.Name {
			case "null syscall", "fork+wait", "read 16KiB", "context switch":
				b.ReportMetric(r.Values[2], r.Name[:4]+"_slowdown_x")
			}
		}
	})
}

func BenchmarkE2_TransitionBreakdown(b *testing.B) {
	runExperiment(b, "E2", func(t *harness.Table, b *testing.B) {
		for _, r := range t.Rows {
			if r.Name == "kernel touch (encrypt+hash)" {
				b.ReportMetric(r.Values[0], "encrypt_page_cycles")
			}
			if r.Name == "app re-touch (verify+decrypt)" {
				b.ReportMetric(r.Values[0], "decrypt_page_cycles")
			}
		}
	})
}

func BenchmarkE3_CPUBound(b *testing.B) {
	runExperiment(b, "E3", func(t *harness.Table, b *testing.B) {
		var worst float64
		for _, r := range t.Rows {
			if r.Values[2] > worst {
				worst = r.Values[2]
			}
		}
		b.ReportMetric(worst, "worst_overhead_pct")
	})
}

func BenchmarkE4_WebServer(b *testing.B) {
	runExperiment(b, "E4", func(t *harness.Table, b *testing.B) {
		b.ReportMetric(t.Rows[0].Values[2], "overhead_1KiB_pct")
		b.ReportMetric(t.Rows[len(t.Rows)-1].Values[2], "overhead_64KiB_pct")
	})
}

func BenchmarkE5_FileIO(b *testing.B) {
	runExperiment(b, "E5", func(t *harness.Table, b *testing.B) {
		for _, r := range t.Rows {
			switch r.Name {
			case "native":
				b.ReportMetric(r.Values[0], "native_KiB_per_Mcyc")
			case "cloaked proc, cloaked file":
				b.ReportMetric(r.Values[0], "cloaked_KiB_per_Mcyc")
			}
		}
	})
}

func BenchmarkE6_Paging(b *testing.B) {
	runExperiment(b, "E6", func(t *harness.Table, b *testing.B) {
		last := t.Rows[len(t.Rows)-1]
		b.ReportMetric(last.Values[2], "cloak_delta_Mcyc_at_1.6x")
		b.ReportMetric(last.Values[3], "pageouts")
	})
}

func BenchmarkE7_MetadataOverhead(b *testing.B) {
	runExperiment(b, "E7", func(t *harness.Table, b *testing.B) {
		b.ReportMetric(t.Rows[len(t.Rows)-1].Values[2], "metadata_bytes_per_page")
	})
}

func BenchmarkE8_AttackDetection(b *testing.B) {
	runExperiment(b, "E8", func(t *harness.Table, b *testing.B) {
		var leaked, corrupted float64
		for _, r := range t.Rows {
			leaked += r.Values[1]
			corrupted += r.Values[2]
		}
		b.ReportMetric(leaked, "plaintext_leaks")
		b.ReportMetric(corrupted, "silent_corruptions")
	})
}

func BenchmarkE9_ProcessMix(b *testing.B) {
	runExperiment(b, "E9", func(t *harness.Table, b *testing.B) {
		b.ReportMetric(t.Rows[len(t.Rows)-1].Values[2], "overhead_pct_jobs8")
	})
}

func BenchmarkE10_Ablations(b *testing.B) {
	runExperiment(b, "E10", func(t *harness.Table, b *testing.B) {
		b.ReportMetric(t.Rows[1].Values[1], "no_multishadow_x")
		b.ReportMetric(t.Rows[2].Values[1], "untagged_tlb_x")
	})
}

func BenchmarkE11_ProtectedIPC(b *testing.B) {
	runExperiment(b, "E11", func(t *harness.Table, b *testing.B) {
		b.ReportMetric(t.Rows[0].Values[0], "pipe_KiB_per_Mcyc")
		b.ReportMetric(t.Rows[1].Values[0], "shm_KiB_per_Mcyc")
	})
}

func BenchmarkE12_KVService(b *testing.B) {
	runExperiment(b, "E12", func(t *harness.Table, b *testing.B) {
		b.ReportMetric(t.Rows[0].Values[2], "overhead_pct_64B")
	})
}
