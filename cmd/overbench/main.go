// Command overbench runs the Overshadow reproduction experiments (E1–E10
// in DESIGN.md) and prints their tables.
//
// Usage:
//
//	overbench               # run every experiment at quick scale
//	overbench -full         # full-scale parameters (slower)
//	overbench -e E1,E8      # a subset by ID
//	overbench -seed 7       # change the simulation seed
//	overbench -list         # list experiments
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"overshadow/internal/harness"
)

func main() {
	full := flag.Bool("full", false, "run full-scale parameters (slower)")
	only := flag.String("e", "", "comma-separated experiment IDs (default: all)")
	seed := flag.Uint64("seed", 1, "simulation seed")
	list := flag.Bool("list", false, "list experiments and exit")
	csv := flag.Bool("csv", false, "emit CSV instead of formatted tables")
	flag.Parse()

	if *list {
		for _, e := range harness.Registry() {
			fmt.Printf("%-5s %s\n", e.ID, e.Title)
		}
		return
	}

	opts := harness.Options{Quick: !*full, Seed: *seed}
	selected := harness.Registry()
	if *only != "" {
		selected = selected[:0]
		for _, id := range strings.Split(*only, ",") {
			e, ok := harness.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "overbench: unknown experiment %q\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	if *csv {
		for _, e := range selected {
			tab := e.Run(opts)
			fmt.Printf("# %s — %s\n%s\n", tab.ID, tab.Title, tab.CSV())
		}
		return
	}

	mode := "quick"
	if *full {
		mode = "full"
	}
	fmt.Printf("overshadow experiment suite (%s scale, seed %d)\n\n", mode, *seed)
	for _, e := range selected {
		start := time.Now()
		tab := e.Run(opts)
		fmt.Println(tab)
		fmt.Printf("  (host time %.1fs)\n\n", time.Since(start).Seconds())
	}
}
