// Command overbench runs the Overshadow reproduction experiments (E1–E10
// in DESIGN.md) and prints their tables.
//
// Usage:
//
//	overbench                      # run every experiment at quick scale
//	overbench -full                # full-scale parameters (slower)
//	overbench -e E1,E8             # a subset by ID
//	overbench -seed 7              # change the simulation seed
//	overbench -list                # list experiments
//	overbench -json                # emit tables as JSON
//	overbench -e E2 -trace t.json  # also write a Perfetto-loadable trace
//	overbench -metrics m.json      # also write attributed cycle metrics
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"overshadow/internal/harness"
	"overshadow/internal/obs"
)

func main() {
	full := flag.Bool("full", false, "run full-scale parameters (slower)")
	only := flag.String("e", "", "comma-separated experiment IDs (default: all)")
	seed := flag.Uint64("seed", 1, "simulation seed")
	list := flag.Bool("list", false, "list experiments and exit")
	csv := flag.Bool("csv", false, "emit CSV instead of formatted tables")
	jsonOut := flag.Bool("json", false, "emit JSON instead of formatted tables")
	traceOut := flag.String("trace", "", "write a Chrome trace_event JSON (load in Perfetto) to `file`")
	metricsOut := flag.String("metrics", "", "write attributed cycle metrics JSON to `file`")
	flag.Parse()

	if *list {
		for _, e := range harness.Registry() {
			fmt.Printf("%-5s %s\n", e.ID, e.Title)
		}
		return
	}

	opts := harness.Options{Quick: !*full, Seed: *seed}
	if *traceOut != "" || *metricsOut != "" {
		opts.Observe = &harness.Observer{}
		if *traceOut != "" {
			opts.Observe.TraceCap = 1 << 18
		}
	}
	selected := harness.Registry()
	if *only != "" {
		selected = selected[:0]
		for _, id := range strings.Split(*only, ",") {
			e, ok := harness.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "overbench: unknown experiment %q\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	switch {
	case *csv:
		for _, e := range selected {
			tab := e.Run(opts)
			fmt.Printf("# %s — %s\n%s\n", tab.ID, tab.Title, tab.CSV())
		}
	case *jsonOut:
		out := make([]string, 0, len(selected))
		for _, e := range selected {
			out = append(out, e.Run(opts).JSON())
		}
		fmt.Printf("[\n%s\n]\n", strings.Join(out, ",\n"))
	default:
		mode := "quick"
		if *full {
			mode = "full"
		}
		fmt.Printf("overshadow experiment suite (%s scale, seed %d)\n\n", mode, *seed)
		for _, e := range selected {
			start := time.Now()
			tab := e.Run(opts)
			fmt.Println(tab)
			fmt.Printf("  (host time %.1fs)\n\n", time.Since(start).Seconds())
		}
	}

	if opts.Observe != nil {
		writeObservations(opts.Observe, *traceOut, *metricsOut)
	}
}

// writeObservations exports the collected spans and metrics to the
// requested files.
func writeObservations(ob *harness.Observer, tracePath, metricsPath string) {
	if tracePath != "" {
		spans, ring := ob.Trace()
		f, err := os.Create(tracePath)
		if err != nil {
			fatal(err)
		}
		if err := obs.WriteChromeTrace(f, spans, ring); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "overbench: wrote %d spans to %s (%d emitted, %d dropped)\n",
			len(spans), tracePath, ring.Total, ring.Dropped)
	}
	if metricsPath != "" {
		m := ob.Metrics
		if m == nil {
			m = obs.NewMetrics() // no experiment attached a world
		}
		f, err := os.Create(metricsPath)
		if err != nil {
			fatal(err)
		}
		if err := obs.WriteMetricsJSON(f, m); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "overbench: wrote attributed metrics to %s\n", metricsPath)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "overbench: %v\n", err)
	os.Exit(1)
}
