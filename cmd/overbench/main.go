// Command overbench runs the Overshadow reproduction experiments (E1–E10
// in DESIGN.md) and prints their tables.
//
// Experiments run on a bounded worker pool: every independent benchmark
// world is one job, and results are collected in declaration order, so all
// output — tables, traces, metrics — is byte-identical for any -shards
// value. Sharding changes host wall time only.
//
// Usage:
//
//	overbench                      # run every experiment at quick scale
//	overbench -full                # full-scale parameters (slower)
//	overbench -e E1,E8             # a subset by ID
//	overbench -seed 7              # change the simulation seed
//	overbench -vcpus 4             # run every machine with 4 virtual CPUs
//	overbench -shards 4            # bound worker-pool width (default GOMAXPROCS)
//	overbench -list                # list experiments
//	overbench -json                # emit tables as JSON
//	overbench -e E2 -trace t.json  # also write a Perfetto-loadable trace
//	overbench -metrics m.json      # also write attributed cycle metrics
//	overbench -profile p.json      # also write a sim-time profile (see overprof)
//	overbench -out bench.json      # write a bench record (cycles + wall time)
//	overbench -baseline bench.json # embed baseline wall time + speedup in -out
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"overshadow/internal/harness"
	"overshadow/internal/obs"
)

func main() {
	full := flag.Bool("full", false, "run full-scale parameters (slower)")
	only := flag.String("e", "", "comma-separated experiment IDs (default: all)")
	seed := flag.Uint64("seed", 1, "simulation seed")
	vcpus := flag.Int("vcpus", 1, "virtual CPUs per simulated machine (1 = the pre-SMP machine, byte-identical output)")
	shards := flag.Int("shards", runtime.GOMAXPROCS(0), "worker-pool width (1 = serial; results are identical for any value)")
	list := flag.Bool("list", false, "list experiments and exit")
	csv := flag.Bool("csv", false, "emit CSV instead of formatted tables")
	jsonOut := flag.Bool("json", false, "emit JSON instead of formatted tables")
	traceOut := flag.String("trace", "", "write a Chrome trace_event JSON (load in Perfetto) to `file`")
	metricsOut := flag.String("metrics", "", "write attributed cycle metrics JSON to `file`")
	profileOut := flag.String("profile", "", "write a sim-time profile artifact (folded stacks + latency histograms) to `file`")
	benchOut := flag.String("out", "", "write a bench record (per-experiment sim cycles + host wall time) to `file`")
	baseline := flag.String("baseline", "", "bench record `file` to compare wall time against in -out")
	flag.Parse()

	if *list {
		for _, e := range harness.Registry() {
			fmt.Printf("%-5s %s\n", e.ID, e.Title)
		}
		return
	}

	if *vcpus < 1 {
		fmt.Fprintf(os.Stderr, "overbench: -vcpus must be >= 1 (got %d)\n", *vcpus)
		os.Exit(2)
	}
	opts := harness.Options{Quick: !*full, Seed: *seed, VCPUs: *vcpus}
	if *traceOut != "" || *metricsOut != "" || *profileOut != "" {
		opts.Observe = &harness.Observer{}
		if *traceOut != "" {
			opts.Observe.TraceCap = 1 << 18
		}
		opts.Observe.Profile = *profileOut != ""
	}
	selected := harness.Registry()
	if *only != "" {
		selected = selected[:0]
		for _, id := range strings.Split(*only, ",") {
			e, ok := harness.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "overbench: unknown experiment %q\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	wallStart := time.Now()
	results := harness.RunAll(opts, selected, *shards)
	wall := time.Since(wallStart)

	switch {
	case *csv:
		for _, r := range results {
			fmt.Printf("# %s — %s\n%s\n", r.Table.ID, r.Table.Title, r.Table.CSV())
		}
	case *jsonOut:
		out := make([]string, 0, len(results))
		for _, r := range results {
			out = append(out, r.Table.JSON())
		}
		fmt.Printf("[\n%s\n]\n", strings.Join(out, ",\n"))
	default:
		mode := "quick"
		if *full {
			mode = "full"
		}
		fmt.Printf("overshadow experiment suite (%s scale, seed %d, %d shards)\n\n", mode, *seed, *shards)
		for _, r := range results {
			fmt.Println(r.Table)
			fmt.Printf("  (host time %.1fs)\n\n", float64(r.HostNS)/1e9)
		}
	}

	if opts.Observe != nil {
		writeObservations(opts.Observe, *traceOut, *metricsOut, *profileOut)
	}
	if *benchOut != "" {
		writeBenchRecord(*benchOut, *baseline, results, selected, opts, *shards, wall)
	}
}

// benchExperiment is one experiment's entry in a bench record.
type benchExperiment struct {
	ID        string  `json:"id"`
	Title     string  `json:"title"`
	SimCycles uint64  `json:"sim_cycles"`
	HostMS    float64 `json:"host_ms"`
}

// benchRecord is the stable -out schema (documented in README.md). The
// sim_cycles fields are deterministic — identical for any shard count and
// host — while host_ms/wall_ms measure this machine's wall time.
type benchRecord struct {
	Schema         string            `json:"schema"` // "overshadow-bench/v1"
	Mode           string            `json:"mode"`   // "quick" | "full"
	Seed           uint64            `json:"seed"`
	VCPUs          int               `json:"vcpus"`
	Shards         int               `json:"shards"`
	GOMAXPROCS     int               `json:"gomaxprocs"`
	Experiments    []benchExperiment `json:"experiments"`
	TotalSimCycles uint64            `json:"total_sim_cycles"`
	WallMS         float64           `json:"wall_ms"`
	BaselineWallMS float64           `json:"baseline_wall_ms,omitempty"`
	Speedup        float64           `json:"speedup,omitempty"`
	// BaselineSimCycles/SimCycleRatio compare the deterministic dimension
	// against -baseline — meaningful when the two records differ in the
	// simulated machine (e.g. -vcpus), not just in host parallelism.
	BaselineSimCycles uint64  `json:"baseline_total_sim_cycles,omitempty"`
	SimCycleRatio     float64 `json:"sim_cycle_ratio,omitempty"`
}

// writeBenchRecord emits the bench record, optionally embedding the wall
// time of a prior record (-baseline) and the resulting speedup.
func writeBenchRecord(path, baselinePath string, results []harness.Result,
	exps []harness.Experiment, opts harness.Options, shards int, wall time.Duration) {
	rec := benchRecord{
		Schema:     "overshadow-bench/v1",
		Mode:       "quick",
		Seed:       opts.Seed,
		VCPUs:      opts.VCPUs,
		Shards:     shards,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		WallMS:     float64(wall.Nanoseconds()) / 1e6,
	}
	if !opts.Quick {
		rec.Mode = "full"
	}
	for i, r := range results {
		rec.Experiments = append(rec.Experiments, benchExperiment{
			ID:        exps[i].ID,
			Title:     exps[i].Title,
			SimCycles: r.SimCycles,
			HostMS:    float64(r.HostNS) / 1e6,
		})
		rec.TotalSimCycles += r.SimCycles
	}
	if baselinePath != "" {
		data, err := os.ReadFile(baselinePath)
		if err != nil {
			fatal(err)
		}
		var base benchRecord
		if err := json.Unmarshal(data, &base); err != nil {
			fatal(fmt.Errorf("parse baseline %s: %w", baselinePath, err))
		}
		rec.BaselineWallMS = base.WallMS
		if rec.WallMS > 0 {
			rec.Speedup = base.WallMS / rec.WallMS
		}
		rec.BaselineSimCycles = base.TotalSimCycles
		if base.TotalSimCycles > 0 {
			rec.SimCycleRatio = float64(rec.TotalSimCycles) / float64(base.TotalSimCycles)
		}
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "overbench: wrote bench record to %s (wall %.0f ms, %d shards)\n",
		path, rec.WallMS, shards)
}

// writeObservations exports the collected spans, metrics, and profile to
// the requested files.
func writeObservations(ob *harness.Observer, tracePath, metricsPath, profilePath string) {
	if tracePath != "" {
		spans, ring := ob.Trace()
		f, err := os.Create(tracePath)
		if err != nil {
			fatal(err)
		}
		if err := obs.WriteChromeTrace(f, spans, ring); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "overbench: wrote %d spans to %s (%d emitted, %d dropped)\n",
			len(spans), tracePath, ring.Total, ring.Dropped)
	}
	if metricsPath != "" {
		f, err := os.Create(metricsPath)
		if err != nil {
			fatal(err)
		}
		if err := obs.WriteMetricsJSON(f, ob.MergedMetrics()); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "overbench: wrote attributed metrics to %s\n", metricsPath)
	}
	if profilePath != "" {
		doc := obs.BuildProfileJSON(ob.MergedProfile())
		f, err := os.Create(profilePath)
		if err != nil {
			fatal(err)
		}
		if err := obs.WriteProfileJSON(f, doc); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "overbench: wrote profile (%d stacks, %d histograms) to %s\n",
			len(doc.Folded), len(doc.Histograms), profilePath)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "overbench: %v\n", err)
	os.Exit(1)
}
