// Command overshadow is the interactive demo: it boots the simulated
// machine, runs a secret-handling application cloaked (or not), optionally
// with a hostile kernel, and prints what the OS could observe plus the
// VMM's audit trail.
//
// Usage:
//
//	overshadow                 # cloaked app under a benign kernel
//	overshadow -native         # the same app without cloaking
//	overshadow -evil           # cloaked app under a snooping+tampering kernel
//	overshadow -native -evil   # demonstrate why you want cloaking
package main

import (
	"bytes"
	"flag"
	"fmt"

	"overshadow/internal/core"
	"overshadow/internal/guestos"
	"overshadow/internal/sim"
	"overshadow/internal/vmm"
)

var secret = []byte("TOP-SECRET: the merger closes Friday at $42/share")

func main() {
	native := flag.Bool("native", false, "run without cloaking")
	evil := flag.Bool("evil", false, "make the guest kernel malicious")
	trace := flag.Bool("trace", false, "print the tail of the diagnostic event trace")
	flag.Parse()

	sys := core.NewSystem(core.Config{MemoryPages: 2048})
	if *trace {
		sys.World.EnableTrace(4096)
	}

	var kernelSnapshots [][]byte
	var tampered bool
	if *evil {
		sys.Adversary().OnSyscall = func(k *guestos.Kernel, p *guestos.Proc, no guestos.Sysno, _ *vmm.Regs) {
			buf := make([]byte, len(secret))
			va := core.Addr(guestos.LayoutHeapBase * core.PageSize)
			if err := k.VMM().ReadVirt(p.AddressSpace(), vmm.ViewSystem, va, buf, false); err == nil {
				kernelSnapshots = append(kernelSnapshots, append([]byte(nil), buf...))
			}
			if !tampered && no == guestos.SysNull {
				if err := k.VMM().WriteVirt(p.AddressSpace(), vmm.ViewSystem, va, []byte{0x00}, false); err == nil {
					tampered = true
				}
			}
		}
	}

	appCompleted := false
	var appReadBack []byte
	sys.Register("secrets", func(e core.Env) {
		base, _ := e.Sbrk(1)
		e.WriteMem(base, secret)
		for i := 0; i < 5; i++ {
			e.Null() // each syscall is a snoop/tamper opportunity
		}
		got := make([]byte, len(secret))
		e.ReadMem(base, got)
		appReadBack = got
		appCompleted = true
		e.Exit(0)
	})

	var opts []core.SpawnOpt
	if !*native {
		opts = append(opts, core.Cloaked())
	}
	if _, err := sys.Spawn("secrets", opts...); err != nil {
		panic(err)
	}
	sys.Run()

	mode := "cloaked"
	if *native {
		mode = "native"
	}
	kernel := "benign"
	if *evil {
		kernel = "malicious"
	}
	fmt.Printf("mode: %s application, %s kernel\n", mode, kernel)
	fmt.Printf("simulated time: %s\n\n", sys.Now())

	if *evil {
		leaked := false
		for _, snap := range kernelSnapshots {
			if bytes.Contains(snap, secret[:10]) {
				leaked = true
			}
		}
		fmt.Printf("kernel snooped %d times; plaintext leaked: %v\n", len(kernelSnapshots), leaked)
		if len(kernelSnapshots) > 0 {
			fmt.Printf("last kernel view of the secret page: %x...\n", kernelSnapshots[len(kernelSnapshots)-1][:24])
		}
		fmt.Printf("kernel tampered with app memory: %v\n", tampered)
	}
	if appCompleted {
		intact := bytes.Equal(appReadBack, secret)
		fmt.Printf("application completed; its data intact: %v\n", intact)
	} else {
		fmt.Println("application was terminated before consuming corrupted data")
	}

	events := sys.SecurityEvents()
	interesting := 0
	for _, ev := range events {
		if ev.Kind != vmm.EventCloakOnKernelAccess {
			interesting++
		}
	}
	fmt.Printf("\nVMM audit log: %d events (%d beyond routine cloak transitions)\n",
		len(events), interesting)
	shown := 0
	for _, ev := range events {
		if ev.Kind != vmm.EventCloakOnKernelAccess && shown < 5 {
			fmt.Printf("  %v\n", ev)
			shown++
		}
	}
	fmt.Printf("\ncounters:\n%s", filterStats(sys.Stats()))

	if *trace {
		spans, ring := sys.World.TraceSpans()
		fmt.Printf("\ndiagnostic trace (%d spans total, %d dropped, showing last %d):\n",
			ring.Total, ring.Dropped, min(len(spans), 40))
		start := len(spans) - 40
		if start < 0 {
			start = 0
		}
		for _, s := range spans[start:] {
			fmt.Printf("  %s\n", s)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func filterStats(s *sim.Stats) string {
	keep := []sim.Counter{
		sim.CtrPageEncrypt, sim.CtrPageDecrypt, sim.CtrHashVerifyOK,
		sim.CtrHashVerifyFail, sim.CtrCTCSave, sim.CtrCTCRestore,
		sim.CtrWorldSwitch, sim.CtrSyscall, sim.CtrHypercall,
	}
	out := ""
	for _, c := range keep {
		out += fmt.Sprintf("  %-22s %8d\n", c, s.Get(c))
	}
	return out
}
