// Command overtrace summarizes a Chrome trace_event JSON file produced by
// overbench -trace (or any tool using the internal/obs exporter): total
// span counts and cycles per span kind, per-track activity, and the longest
// individual spans. The raw file loads directly into Perfetto or
// chrome://tracing; overtrace is the terminal-side view of the same data.
//
// Usage:
//
//	overtrace trace.json
//	overtrace -top 20 trace.json
//	overtrace -hist trace.json   # per-kind/per-domain duration percentiles
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"overshadow/internal/obs"
)

func main() {
	top := flag.Int("top", 10, "number of longest spans to list")
	hist := flag.Bool("hist", false, "print per-kind/per-domain duration percentiles instead of the summary")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: overtrace [-top N] [-hist] trace.json")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	trace, err := obs.ParseChromeTrace(f)
	if err != nil {
		fatal(fmt.Errorf("parsing %s: %w", flag.Arg(0), err))
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	if *hist {
		histogram(trace)
		return
	}
	summarize(trace, *top)
}

// histogram builds per-(kind, domain) duration histograms from the trace's
// complete spans and prints the shared percentile table. The ring's dropped
// count is printed with it: histograms built from a wrapped trace cover only
// the retained spans.
func histogram(trace *obs.ChromeTrace) {
	type key struct {
		kind   string
		domain uint32
	}
	hists := map[key]*obs.Histogram{}
	for _, ev := range trace.TraceEvents {
		if ev.Ph != "X" {
			continue // instants and metadata carry no duration
		}
		dur := uint64(0)
		if ev.Dur != nil {
			dur = *ev.Dur
		}
		k := key{kind: ev.Cat}
		if ev.Args != nil {
			k.domain = ev.Args.Domain
		}
		h := hists[k]
		if h == nil {
			h = &obs.Histogram{}
			hists[k] = h
		}
		h.Record(dur)
	}
	keys := make([]key, 0, len(hists))
	for k := range hists {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].kind != keys[j].kind {
			return keys[i].kind < keys[j].kind
		}
		return keys[i].domain < keys[j].domain
	})
	rows := make([]obs.ProfHistJSON, 0, len(keys))
	for _, k := range keys {
		rows = append(rows, obs.ProfHistJSON{
			Kind:          k.kind,
			Domain:        k.domain,
			HistogramJSON: obs.BuildHistogramJSON(hists[k]),
		})
	}
	if err := obs.WriteHistTable(os.Stdout, rows, trace.OtherData.DroppedSpans); err != nil {
		fatal(err)
	}
}

// rollup accumulates span statistics under one label (a kind or a track).
type rollup struct {
	label  string
	spans  int
	cycles uint64
}

func summarize(trace *obs.ChromeTrace, top int) {
	trackNames := map[int]string{}
	byKind := map[string]*rollup{}
	byTrack := map[int]*rollup{}
	var spans []obs.ChromeEvent
	for _, ev := range trace.TraceEvents {
		switch ev.Ph {
		case "M":
			if ev.Name == "thread_name" && ev.Args != nil {
				trackNames[ev.Tid] = ev.Args.Name
			}
			continue
		case "X", "i":
			spans = append(spans, ev)
		default:
			continue
		}
		dur := uint64(0)
		if ev.Dur != nil {
			dur = *ev.Dur
		}
		k := byKind[ev.Cat]
		if k == nil {
			k = &rollup{label: ev.Cat}
			byKind[ev.Cat] = k
		}
		k.spans++
		k.cycles += dur
		tr := byTrack[ev.Tid]
		if tr == nil {
			tr = &rollup{}
			byTrack[ev.Tid] = tr
		}
		tr.spans++
		tr.cycles += dur
	}

	fmt.Printf("trace: %d events, %d spans on %d tracks (clock domain %s)\n",
		len(trace.TraceEvents), len(spans), len(byTrack), trace.OtherData.ClockDomain)
	fmt.Printf("ring: %d spans emitted, %d dropped", trace.OtherData.TotalSpans, trace.OtherData.DroppedSpans)
	if trace.OtherData.RingWrapped {
		fmt.Printf("  (ring wrapped: the trace is truncated)")
	}
	fmt.Println()

	fmt.Println("\nby span kind:")
	for _, r := range sortRollups(byKind) {
		fmt.Printf("  %-14s %8d spans %14d cycles\n", r.label, r.spans, r.cycles)
	}

	fmt.Println("\nby track:")
	for tid, r := range byTrack {
		name := trackNames[tid]
		if name == "" {
			name = fmt.Sprintf("track %d", tid)
		}
		r.label = fmt.Sprintf("%s [tid %d]", name, tid)
	}
	for _, r := range sortRollups(byTrack) {
		fmt.Printf("  %-28s %8d spans %14d cycles\n", r.label, r.spans, r.cycles)
	}

	// Longest spans: X events only, by duration, deterministic tiebreaks.
	sort.SliceStable(spans, func(i, j int) bool {
		di, dj := uint64(0), uint64(0)
		if spans[i].Dur != nil {
			di = *spans[i].Dur
		}
		if spans[j].Dur != nil {
			dj = *spans[j].Dur
		}
		if di != dj {
			return di > dj
		}
		return spans[i].Ts < spans[j].Ts
	})
	if top > len(spans) {
		top = len(spans)
	}
	fmt.Printf("\nlongest %d spans:\n", top)
	for _, ev := range spans[:top] {
		dur := uint64(0)
		if ev.Dur != nil {
			dur = *ev.Dur
		}
		fmt.Printf("  %12d cycles  %-12s %-16s @%-12d tid %d\n", dur, ev.Cat, ev.Name, ev.Ts, ev.Tid)
	}
}

// sortRollups orders rollups by cycles descending, then spans descending,
// then label, so output is deterministic.
func sortRollups[K comparable](m map[K]*rollup) []*rollup {
	out := make([]*rollup, 0, len(m))
	for _, r := range m {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].cycles != out[j].cycles {
			return out[i].cycles > out[j].cycles
		}
		if out[i].spans != out[j].spans {
			return out[i].spans > out[j].spans
		}
		return out[i].label < out[j].label
	})
	return out
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "overtrace: %v\n", err)
	os.Exit(1)
}
