// Command overlint runs the module's domain-aware static analyzers:
//
//	determinism     — no host time, math/rand, multi-channel select, or
//	                  unscheduled goroutines inside the simulated machine
//	cloakboundary   — untrusted guestos code never touches machine memory
//	                  or cloaking secrets directly; outside internal/vmm,
//	                  domain hypercalls go through the typed vmm.DomainConn
//	                  handle, never the raw VMM.HC* forwarders
//	errnodiscipline — no raw errno literals, no discarded error/Errno results
//	cyclecharge     — exported memory-touching VMM/guestos functions charge
//	                  the sim cost model
//
// Usage:
//
//	go run ./cmd/overlint [-json] [packages]
//
// Packages default to ./... . The exit status is 0 when the tree is clean,
// 1 when findings are reported, and 2 when loading or analysis fails.
// Findings can be suppressed, with a recorded justification, by
// "//overlint:allow <analyzer> -- <reason>" on or directly above the
// offending line.
package main

import (
	"flag"
	"fmt"
	"os"

	"overshadow/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: overlint [-json] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "overlint:", err)
		os.Exit(2)
	}
	findings, err := lint.Run(os.Stdout, cwd, lint.Options{
		Patterns: patterns,
		JSON:     *jsonOut,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "overlint:", err)
		os.Exit(2)
	}
	if len(findings) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "overlint: %d finding(s)\n", len(findings))
		}
		os.Exit(1)
	}
}
