// Command overprof renders a sim-time profile artifact produced by
// overbench -profile (schema overshadow-profile/v1): a top-N self/total
// cycles table, per-(kind, domain) latency percentile tables, and — with
// -folded — the raw folded stacks, directly consumable by standard
// flame-graph tooling (e.g. flamegraph.pl or speedscope).
//
// All numbers are simulated cycles attributed by the deterministic profiler
// in internal/sim; output for a given artifact is byte-identical across
// hosts and runs.
//
// Usage:
//
//	overprof profile.json            # top table + latency percentiles
//	overprof -top 30 profile.json    # widen the top table
//	overprof -folded profile.json    # folded stacks for flame-graph tools
package main

import (
	"flag"
	"fmt"
	"os"

	"overshadow/internal/obs"
)

func main() {
	top := flag.Int("top", 15, "number of frames in the top table")
	folded := flag.Bool("folded", false, "print folded stacks (flame-graph collapsed format) and exit")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: overprof [-top N] [-folded] profile.json")
		os.Exit(2)
	}
	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	doc, err := obs.ParseProfileJSON(data)
	if err != nil {
		fatal(err)
	}
	if *folded {
		if err := obs.WriteFolded(os.Stdout, doc); err != nil {
			fatal(err)
		}
		return
	}
	fmt.Printf("profile: %d cycles over %d stacks, %d span histograms\n\n",
		doc.TotalCycles, len(doc.Folded), len(doc.Histograms))
	fmt.Printf("top %d frames by self cycles:\n", *top)
	if err := obs.WriteTopN(os.Stdout, doc, *top); err != nil {
		fatal(err)
	}
	fmt.Println("\nspan latency (simulated cycles):")
	if err := obs.WriteHistTable(os.Stdout, doc.Histograms, doc.DroppedSpans); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "overprof: %v\n", err)
	os.Exit(1)
}
