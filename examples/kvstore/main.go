// Kvstore: the paper's motivating deployment — a data-handling server whose
// operator does not trust the operating system. A cloaked key-value server
// keeps its table in protected memory and persists it to a cloaked file;
// clients talk to it over pipes (marshalled transport). A hostile kernel
// snoops memory at every trap and reads the database file off "disk" — and
// gets ciphertext both times, while the service works normally.
package main

import (
	"bytes"
	"fmt"

	"overshadow"
	"overshadow/internal/guestos"
	"overshadow/internal/vmm"
)

// Protocol over the request pipe: op byte ('P'ut/'G'et/'Q'uit), 1-byte key
// length, key, then for Put a 1-byte value length and the value. The reply
// pipe carries a 1-byte length (0 = not found) and the value.

const (
	maxPairs  = 64
	slotBytes = 64 // 1B klen + 31B key + 1B vlen + 31B value
)

func main() {
	sys := overshadow.NewSystem(overshadow.Config{MemoryPages: 2048})

	// The hostile kernel, doing both live snooping and cold reads.
	var liveLeaks, traps int
	heapVA := overshadow.Addr(guestos.LayoutHeapBase * overshadow.PageSize)
	sys.Adversary().OnSyscall = func(k *guestos.Kernel, p *guestos.Proc, _ guestos.Sysno, _ *vmm.Regs) {
		if !p.Cloaked() {
			return
		}
		traps++
		buf := make([]byte, 256)
		if err := k.VMM().ReadVirt(p.AddressSpace(), vmm.ViewSystem, heapVA, buf, false); err == nil {
			if bytes.Contains(buf, []byte("launchcode")) || bytes.Contains(buf, []byte("hunter2")) {
				liveLeaks++
			}
		}
	}

	sys.Register("kvserver", func(e overshadow.Env) { kvServer(e) })
	sys.Register("kvclient", func(e overshadow.Env) { kvClient(e) })

	// The server forks the client itself (pipes need a common ancestor).
	if _, err := sys.Spawn("kvserver", overshadow.Cloaked()); err != nil {
		panic(err)
	}
	sys.Run()

	// Cold audit: what does the database file hold?
	stored, err := sys.ReadGuestFile("/secret/kv.db")
	if err != nil {
		panic(err)
	}
	coldLeak := bytes.Contains(stored, []byte("hunter2")) ||
		bytes.Contains(stored, []byte("launchcode"))
	fmt.Printf("\naudit: %d traps snooped, live plaintext leaks: %d\n", traps, liveLeaks)
	fmt.Printf("audit: database file on disk is %d bytes; plaintext found: %v\n",
		len(stored), coldLeak)
	fmt.Printf("audit: first db bytes: %x…\n", stored[:24])
	if liveLeaks == 0 && !coldLeak {
		fmt.Println("OK: the store served queries while memory, file, and swap stayed opaque")
	} else {
		fmt.Println("FAILURE")
	}
}

// kvServer owns the protected table and answers requests until 'Q'.
func kvServer(e overshadow.Env) {
	e.Mkdir("/secret")
	table, _ := e.Sbrk(int64(maxPairs*slotBytes/overshadow.PageSize) + 1)
	io, _ := e.Alloc(1)

	reqR, reqW, _ := e.Pipe()
	repR, repW, _ := e.Pipe()
	pid, err := e.Fork(func(c overshadow.Env) {
		c.Close(reqR)
		c.Close(repW)
		kvClientLoop(c, reqW, repR)
	})
	if err != nil {
		e.Exit(1)
	}
	e.Close(reqW)
	e.Close(repR)

	readN := func(n int) []byte {
		out := make([]byte, n)
		got := 0
		for got < n {
			m, err := e.Read(reqR, io, n-got)
			if err != nil || m == 0 {
				e.Exit(1)
			}
			e.ReadMem(io, out[got:got+m])
			got += m
		}
		return out
	}
	slot := func(i int) overshadow.Addr { return table + overshadow.Addr(i*slotBytes) }
	findOrFree := func(key []byte) (int, bool) {
		free := -1
		for i := 0; i < maxPairs; i++ {
			var kl [1]byte
			e.ReadMem(slot(i), kl[:])
			if kl[0] == 0 {
				if free < 0 {
					free = i
				}
				continue
			}
			k := make([]byte, kl[0])
			e.ReadMem(slot(i)+1, k)
			if bytes.Equal(k, key) {
				return i, true
			}
		}
		return free, false
	}

	served := 0
	for {
		op := readN(1)[0]
		if op == 'Q' {
			break
		}
		klen := int(readN(1)[0])
		key := readN(klen)
		i, found := findOrFree(key)
		switch op {
		case 'P':
			vlen := int(readN(1)[0])
			val := readN(vlen)
			if i < 0 {
				e.Exit(2) // table full
			}
			e.WriteMem(slot(i), append([]byte{byte(klen)}, key...))
			e.WriteMem(slot(i)+32, append([]byte{byte(vlen)}, val...))
			e.WriteMem(io, []byte{1})
			e.Write(repW, io, 1)
		case 'G':
			if !found {
				e.WriteMem(io, []byte{0})
				e.Write(repW, io, 1)
				break
			}
			var vl [1]byte
			e.ReadMem(slot(i)+32, vl[:])
			val := make([]byte, vl[0])
			e.ReadMem(slot(i)+33, val)
			e.WriteMem(io, append(vl[:], val...))
			e.Write(repW, io, 1+len(val))
		}
		served++
	}

	// Persist the table to the cloaked database file.
	fd, err := e.Open("/secret/kv.db", overshadow.OCreate|overshadow.OWrOnly|overshadow.OTrunc)
	if err != nil {
		e.Exit(1)
	}
	if _, err := e.Write(fd, table, maxPairs*slotBytes); err != nil {
		e.Exit(1)
	}
	e.Close(fd)
	fmt.Printf("server: handled %d requests, persisted %d-slot table\n", served, maxPairs)
	e.WaitPid(pid)
	e.Exit(0)
}

func kvClient(e overshadow.Env) { e.Exit(0) } // registered for completeness

// kvClientLoop issues a workload of puts and gets and verifies the answers.
func kvClientLoop(e overshadow.Env, reqW, repR int) {
	io, _ := e.Alloc(1)
	send := func(b []byte) {
		e.WriteMem(io, b)
		off := 0
		for off < len(b) {
			n, err := e.Write(reqW, io+overshadow.Addr(off), len(b)-off)
			if err != nil {
				e.Exit(1)
			}
			off += n
		}
	}
	recv := func() []byte {
		n, err := e.Read(repR, io, 64)
		if err != nil || n == 0 {
			e.Exit(1)
		}
		out := make([]byte, n)
		e.ReadMem(io, out)
		return out
	}
	put := func(k, v string) {
		msg := []byte{'P', byte(len(k))}
		msg = append(msg, k...)
		msg = append(msg, byte(len(v)))
		msg = append(msg, v...)
		send(msg)
		recv()
	}
	get := func(k string) string {
		msg := []byte{'G', byte(len(k))}
		send(append(msg, k...))
		rep := recv()
		if rep[0] == 0 {
			return ""
		}
		for len(rep) < int(rep[0])+1 {
			rep = append(rep, recv()...)
		}
		return string(rep[1 : 1+rep[0]])
	}

	put("alice-password", "hunter2")
	put("missile", "launchcode-0451")
	put("color", "blue")
	ok := true
	ok = ok && get("alice-password") == "hunter2"
	ok = ok && get("missile") == "launchcode-0451"
	ok = ok && get("color") == "blue"
	ok = ok && get("missing") == ""
	put("color", "red") // overwrite
	ok = ok && get("color") == "red"
	fmt.Printf("client: all lookups correct: %v\n", ok)
	send([]byte{'Q'})
	e.Close(reqW)
	e.Close(repR)
	e.Exit(0)
}
