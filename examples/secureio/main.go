// Secureio: cloaked file I/O through the shim's transparent memory-mapped
// emulation. A cloaked process writes a record file under /secret/; the
// bytes that reach the guest filesystem (and swap) are ciphertext, yet the
// application — and a second cloaked process — read the plaintext back
// through ordinary read()/write() calls.
package main

import (
	"bytes"
	"fmt"

	"overshadow"
)

func main() {
	sys := overshadow.NewSystem(overshadow.Config{MemoryPages: 2048})

	record := []byte("account=alice balance=95000 pin=0000 // extremely private")

	sys.Register("writer", func(e overshadow.Env) {
		e.Mkdir("/secret")
		buf, _ := e.Alloc(1)
		e.WriteMem(buf, record)
		fd, err := e.Open("/secret/accounts.db", overshadow.OCreate|overshadow.ORdWr)
		if err != nil {
			fmt.Println("open failed:", err)
			e.Exit(1)
		}
		if _, err := e.Write(fd, buf, len(record)); err != nil {
			fmt.Println("write failed:", err)
			e.Exit(1)
		}
		e.Close(fd)
		// Signal completion for the auditor/reader.
		done, _ := e.Open("/handoff", overshadow.OCreate|overshadow.OWrOnly)
		e.Close(done)
		e.Exit(0)
	})

	sys.Register("reader", func(e overshadow.Env) {
		for {
			if _, err := e.Stat("/handoff"); err == nil {
				break
			}
			e.Sleep(50_000)
		}
		fd, err := e.Open("/secret/accounts.db", overshadow.ORdOnly)
		if err != nil {
			fmt.Println("reader open failed:", err)
			e.Exit(1)
		}
		out, _ := e.Alloc(1)
		n, err := e.Read(fd, out, 256)
		if err != nil {
			fmt.Println("reader read failed:", err)
			e.Exit(1)
		}
		got := make([]byte, n)
		e.ReadMem(out, got)
		fmt.Printf("second cloaked process read: %q\n", got)
		if !bytes.Equal(got, record) {
			fmt.Println("FAILURE: data mismatch")
		}
		e.Close(fd)
		e.Exit(0)
	})

	sys.Spawn("writer", overshadow.Cloaked())
	sys.Spawn("reader", overshadow.Cloaked())
	sys.Run()

	// Host-side audit: what actually sits in the guest filesystem?
	stored, err := sys.ReadGuestFile("/secret/accounts.db")
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nbytes on the guest 'disk': %x…\n", stored[:32])
	if bytes.Contains(stored, record[:12]) {
		fmt.Println("FAILURE: plaintext hit the filesystem")
	} else {
		fmt.Println("OK: the filesystem (and hence the OS, backups, and the")
		fmt.Println("    disk) holds only ciphertext — yet read()/write() were")
		fmt.Println("    ordinary calls; the shim's mmap emulation did the rest.")
	}
	fmt.Printf("\nshim-emulated I/O ops: %d, marshalled bytes: %d\n",
		sys.Stats().Get("shim.syscall"),
		sys.Stats().Get("shim.marshal.bytes"))
}
