// Maliciousos: the OS turns hostile. This example mounts the full attack
// repertoire of a compromised kernel against one cloaked victim — syscall
// snooping, register harvesting, memory tampering, and swap games — and
// reports, attack by attack, what leaked (nothing), what was silently
// corrupted (nothing), and what the VMM detected.
package main

import (
	"bytes"
	"fmt"

	"overshadow"
	"overshadow/internal/guestos"
	"overshadow/internal/vmm"
)

var secret = []byte("patient record #4421: diagnosis confidential")

func main() {
	fmt.Println("=== attack 1: snoop application memory at every syscall ===")
	snoop()
	fmt.Println("\n=== attack 2: harvest registers at every trap ===")
	registers()
	fmt.Println("\n=== attack 3: tamper with application memory ===")
	tamper()
	fmt.Println("\n=== attack 4: corrupt pages in swap ===")
	swapAttack()
}

func heapVA() overshadow.Addr {
	return overshadow.Addr(guestos.LayoutHeapBase * overshadow.PageSize)
}

func snoop() {
	sys := overshadow.NewSystem(overshadow.Config{MemoryPages: 1024})
	var seen [][]byte
	sys.Adversary().OnSyscall = func(k *guestos.Kernel, p *guestos.Proc, _ guestos.Sysno, _ *vmm.Regs) {
		if !p.Cloaked() {
			return
		}
		buf := make([]byte, len(secret))
		if err := k.VMM().ReadVirt(p.AddressSpace(), vmm.ViewSystem, heapVA(), buf, false); err == nil {
			seen = append(seen, buf)
		}
	}
	sys.Register("victim", func(e overshadow.Env) {
		base, _ := e.Sbrk(1)
		e.WriteMem(base, secret)
		for i := 0; i < 8; i++ {
			e.Null()
		}
		e.Exit(0)
	})
	sys.Spawn("victim", overshadow.Cloaked())
	sys.Run()
	leaks := 0
	for _, s := range seen {
		if bytes.Contains(s, secret[:8]) {
			leaks++
		}
	}
	fmt.Printf("kernel read the victim's heap %d times, plaintext leaks: %d\n", len(seen), leaks)
	fmt.Printf("sample of what it got: %x…\n", seen[len(seen)-1][:16])
}

func registers() {
	sys := overshadow.NewSystem(overshadow.Config{MemoryPages: 1024})
	var nonzero int
	var traps int
	sys.Adversary().OnSyscall = func(_ *guestos.Kernel, p *guestos.Proc, _ guestos.Sysno, kregs *vmm.Regs) {
		if !p.Cloaked() {
			return
		}
		traps++
		if kregs.PC != 0 || kregs.SP != 0 {
			nonzero++
		}
	}
	sys.Register("victim", func(e overshadow.Env) {
		for i := 0; i < 10; i++ {
			e.Compute(1000)
			e.Null()
		}
		e.Exit(0)
	})
	sys.Spawn("victim", overshadow.Cloaked())
	sys.Run()
	fmt.Printf("kernel saw %d traps; PC/SP were non-scrubbed in %d of them\n", traps, nonzero)
}

func tamper() {
	sys := overshadow.NewSystem(overshadow.Config{MemoryPages: 1024})
	done := false
	sys.Adversary().OnSyscall = func(k *guestos.Kernel, p *guestos.Proc, _ guestos.Sysno, _ *vmm.Regs) {
		if done || !p.Cloaked() {
			return
		}
		if err := k.VMM().WriteVirt(p.AddressSpace(), vmm.ViewSystem, heapVA(), []byte("pwnd"), false); err == nil {
			done = true
		}
	}
	survived := false
	sys.Register("victim", func(e overshadow.Env) {
		base, _ := e.Sbrk(1)
		e.WriteMem(base, secret)
		e.Null() // tamper happens here
		buf := make([]byte, len(secret))
		e.ReadMem(base, buf) // VMM kills us before we see forged data
		survived = true
		e.Exit(0)
	})
	sys.Spawn("victim", overshadow.Cloaked())
	sys.Run()
	fmt.Printf("kernel overwrote the victim's page: %v\n", done)
	fmt.Printf("victim consumed forged data: %v\n", survived)
	for _, ev := range sys.SecurityEvents() {
		if ev.Kind == vmm.EventIntegrityViolation {
			fmt.Printf("VMM detected: %v\n", ev)
			return
		}
	}
	fmt.Println("NOT DETECTED — this would be a bug")
}

func swapAttack() {
	sys := overshadow.NewSystem(overshadow.Config{MemoryPages: 128})
	flips := 0
	sys.Adversary().OnPageIn = func(_ *guestos.Kernel, p *guestos.Proc, _ uint64, frame []byte) {
		if p.Cloaked() && flips == 0 {
			frame[0] ^= 0xFF
			flips++
		}
	}
	finished := false
	sys.Register("victim", func(e overshadow.Env) {
		const pages = 200 // exceeds RAM: forces swap
		base, _ := e.Alloc(pages)
		for i := 0; i < pages; i++ {
			e.Store64(base+overshadow.Addr(i*overshadow.PageSize), uint64(i))
		}
		for i := 0; i < pages; i++ {
			_ = e.Load64(base + overshadow.Addr(i*overshadow.PageSize))
		}
		finished = true
		e.Exit(0)
	})
	sys.Spawn("victim", overshadow.Cloaked())
	sys.Run()
	fmt.Printf("kernel flipped bits in %d swapped-in page(s)\n", flips)
	fmt.Printf("victim finished with corrupted data: %v\n", finished)
	fmt.Printf("verification failures recorded: %d\n",
		sys.Stats().Get("cloak.verify.fail"))
}
