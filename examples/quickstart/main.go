// Quickstart: boot the machine, run one cloaked application, and show that
// the guest kernel sees only ciphertext while the application computes on
// plaintext.
package main

import (
	"bytes"
	"fmt"

	"overshadow"
	"overshadow/internal/guestos"
	"overshadow/internal/vmm"
)

func main() {
	sys := overshadow.NewSystem(overshadow.Config{MemoryPages: 1024})

	secret := []byte("my diary: today I learned about multi-shadowing")
	var kernelView []byte

	// Peek at the application's heap from the kernel's (system) view on
	// every syscall — this is what any kernel code path would see.
	sys.Adversary().OnSyscall = func(k *guestos.Kernel, p *guestos.Proc, _ guestos.Sysno, _ *vmm.Regs) {
		if !p.Cloaked() {
			return
		}
		buf := make([]byte, len(secret))
		va := overshadow.Addr(guestos.LayoutHeapBase * overshadow.PageSize)
		if err := k.VMM().ReadVirt(p.AddressSpace(), vmm.ViewSystem, va, buf, false); err == nil {
			kernelView = buf
		}
	}

	sys.Register("diary", func(e overshadow.Env) {
		heap, _ := e.Sbrk(1) // one page of protected heap
		e.WriteMem(heap, secret)
		e.Null() // enter the kernel once so it gets its chance to look

		got := make([]byte, len(secret))
		e.ReadMem(heap, got)
		fmt.Printf("app sees:    %q\n", got)
		e.Exit(0)
	})

	if _, err := sys.Spawn("diary", overshadow.Cloaked()); err != nil {
		panic(err)
	}
	sys.Run()

	fmt.Printf("kernel sees: %x…\n", kernelView[:24])
	if bytes.Contains(kernelView, secret[:8]) {
		fmt.Println("FAILURE: the kernel observed plaintext")
	} else {
		fmt.Println("OK: the kernel observed only ciphertext")
	}
	fmt.Printf("simulated time: %v; encryptions: %d, decryptions: %d\n",
		sys.Now(),
		sys.Stats().Get("cloak.encrypt"),
		sys.Stats().Get("cloak.decrypt"))
}
