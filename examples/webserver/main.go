// Webserver: the paper's motivating macro-workload. A request-serving loop
// (client and server processes joined by pipes, content from the guest
// filesystem) runs once natively and once cloaked; the example prints
// throughput in simulated cycles and the overhead cloaking costs.
package main

import (
	"fmt"

	"overshadow"
	"overshadow/internal/workload"
)

func main() {
	cfg := workload.WebConfig{
		Requests:     200,
		PayloadBytes: 8 * 1024,
		NumDocs:      8,
		ParseCompute: 2000,
	}

	run := func(cloaked bool) overshadow.Cycles {
		sys := overshadow.NewSystem(overshadow.Config{MemoryPages: 4096})
		sys.Register("web", workload.WebServerProgram(cfg))
		if cloaked {
			if _, err := sys.Spawn("web", overshadow.Cloaked()); err != nil {
				panic(err)
			}
		} else {
			if _, err := sys.Spawn("web"); err != nil {
				panic(err)
			}
		}
		sys.Run()
		return sys.Now()
	}

	native := run(false)
	cloaked := run(true)

	reqPerMcyc := func(c overshadow.Cycles) float64 {
		return float64(cfg.Requests) / (float64(c) / 1e6)
	}
	fmt.Printf("requests: %d, payload: %d KiB\n", cfg.Requests, cfg.PayloadBytes/1024)
	fmt.Printf("native:  %v  (%.2f req/Mcyc)\n", native, reqPerMcyc(native))
	fmt.Printf("cloaked: %v  (%.2f req/Mcyc)\n", cloaked, reqPerMcyc(cloaked))
	fmt.Printf("cloaking overhead: %.1f%%\n",
		(float64(cloaked)/float64(native)-1)*100)
	fmt.Println("\nwhere the cloaked cycles go: every request's pipe read/write and")
	fmt.Println("file read is marshalled through the shim's uncloaked scratch buffer,")
	fmt.Println("and every trap pays secure control transfer.")
}
