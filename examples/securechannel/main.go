// Securechannel: two cloaked processes communicate through protected shared
// memory — a feature built on the paper's vault-identity machinery. The
// guest kernel implements the sharing (it allocates and maps the frames),
// yet every snapshot it can take of the channel shows only ciphertext.
package main

import (
	"bytes"
	"fmt"

	"overshadow"
	"overshadow/internal/guestos"
	"overshadow/internal/vmm"
)

func main() {
	sys := overshadow.NewSystem(overshadow.Config{MemoryPages: 1024})

	messages := [][]byte{
		[]byte("msg-1: rotate the API keys tonight"),
		[]byte("msg-2: the audit found nothing, as planned"),
		[]byte("msg-3: wire the retainer to escrow"),
	}

	// Hostile kernel: photograph the channel pages at every trap.
	var snapshots [][]byte
	chanVA := overshadow.Addr(guestos.LayoutMmapBase * overshadow.PageSize)
	sys.Adversary().OnSyscall = func(k *guestos.Kernel, p *guestos.Proc, _ guestos.Sysno, _ *vmm.Regs) {
		if !p.Cloaked() {
			return
		}
		buf := make([]byte, 64)
		if err := k.VMM().ReadVirt(p.AddressSpace(), vmm.ViewSystem, chanVA+8192, buf, false); err == nil {
			snapshots = append(snapshots, append([]byte(nil), buf...))
		}
	}

	var received [][]byte
	sys.Register("sender", func(e overshadow.Env) {
		base, err := e.ShmAttach("channel", 3)
		if err != nil {
			panic(err)
		}
		data := base + overshadow.Addr(2*overshadow.PageSize)
		for i, msg := range messages {
			for e.Load64(base+8) != uint64(i) { // wait for ack
				e.Yield()
			}
			e.WriteMem(data, append(msg, 0))
			e.Store64(base, uint64(i+1)) // publish
		}
		for e.Load64(base+8) != uint64(len(messages)) {
			e.Yield()
		}
		e.Exit(0)
	})
	sys.Register("receiver", func(e overshadow.Env) {
		base, err := e.ShmAttach("channel", 3)
		if err != nil {
			panic(err)
		}
		data := base + overshadow.Addr(2*overshadow.PageSize)
		for i := range messages {
			for e.Load64(base) != uint64(i+1) {
				e.Sleep(20_000)
			}
			buf := make([]byte, 64)
			e.ReadMem(data, buf)
			if n := bytes.IndexByte(buf, 0); n >= 0 {
				buf = buf[:n]
			}
			received = append(received, buf)
			e.Store64(base+8, uint64(i+1)) // ack
		}
		e.Exit(0)
	})

	sys.Spawn("sender", overshadow.Cloaked())
	sys.Spawn("receiver", overshadow.Cloaked())
	sys.Run()

	fmt.Printf("receiver got %d messages:\n", len(received))
	allOK := true
	for i, m := range received {
		ok := bytes.Equal(m, messages[i])
		allOK = allOK && ok
		fmt.Printf("  %q (intact: %v)\n", m, ok)
	}
	leaks := 0
	for _, s := range snapshots {
		for _, m := range messages {
			if bytes.Contains(s, m[:8]) {
				leaks++
			}
		}
	}
	fmt.Printf("\nkernel photographed the channel %d times; plaintext leaks: %d\n",
		len(snapshots), leaks)
	if len(snapshots) > 0 {
		fmt.Printf("sample kernel view: %x…\n", snapshots[len(snapshots)-1][:24])
	}
	if allOK && leaks == 0 {
		fmt.Println("OK: a confidential channel over OS-managed shared memory")
	} else {
		fmt.Println("FAILURE")
	}
}
