// Workerpool: a multithreaded cloaked application. Overshadow's protection
// is per-thread at the trap level (every thread has its own cloaked thread
// context whose registers are scrubbed independently) and per-domain at the
// memory level (all threads share one plaintext view of the protected
// working set). A hostile kernel watches every trap from every thread and
// still learns nothing.
package main

import (
	"bytes"
	"fmt"

	"overshadow"
	"overshadow/internal/guestos"
	"overshadow/internal/vmm"
)

func main() {
	sys := overshadow.NewSystem(overshadow.Config{MemoryPages: 2048})

	// The hostile kernel: harvest registers and scan the shared heap at
	// every trap from every thread.
	secretBlock := []byte("payroll row: cto, $0 (equity only), ssn 078-05-1120")
	var traps, regLeaks, memLeaks int
	sys.Adversary().OnSyscall = func(k *guestos.Kernel, p *guestos.Proc, _ guestos.Sysno, kregs *vmm.Regs) {
		if !p.Cloaked() {
			return
		}
		traps++
		if kregs.PC != 0 || kregs.SP != 0 {
			regLeaks++
		}
		buf := make([]byte, len(secretBlock))
		va := overshadow.Addr(guestos.LayoutHeapBase * overshadow.PageSize)
		if err := k.VMM().ReadVirt(p.AddressSpace(), vmm.ViewSystem, va, buf, false); err == nil {
			if bytes.Contains(buf, secretBlock[:12]) {
				memLeaks++
			}
		}
	}

	const rows = 30
	const workers = 4
	var checksum uint64

	sys.Register("payroll", func(e overshadow.Env) {
		// Shared protected state: the table, a work cursor, a result cell.
		table, _ := e.Sbrk(8) // heap: what the adversary scans
		e.WriteMem(table, secretBlock)
		for i := 0; i < rows; i++ {
			e.Store64(table+overshadow.Addr(256+i*8), uint64(i)*1111)
		}
		cursor, _ := e.Alloc(1)
		result, _ := e.Alloc(1)

		var tids []overshadow.Pid
		for w := 0; w < workers; w++ {
			tid, err := e.SpawnThread(func(te overshadow.Env) {
				for {
					i := te.Load64(cursor)
					if i >= rows {
						return
					}
					te.Store64(cursor, i+1)
					salary := te.Load64(table + overshadow.Addr(256+i*8))
					te.Compute(5_000) // "tax calculation"
					te.Null()         // a trap: the kernel pounces
					te.Store64(result, te.Load64(result)+salary*3/2)
					te.Yield()
				}
			})
			if err != nil {
				panic(err)
			}
			tids = append(tids, tid)
		}
		for _, tid := range tids {
			e.JoinThread(tid)
		}
		checksum = e.Load64(result)
		e.Exit(0)
	})

	if _, err := sys.Spawn("payroll", overshadow.Cloaked()); err != nil {
		panic(err)
	}
	sys.Run()

	var want uint64
	for i := 0; i < rows; i++ {
		want += uint64(i) * 1111 * 3 / 2
	}
	fmt.Printf("%d worker threads processed %d rows; checksum %d (want %d)\n",
		workers, rows, checksum, want)
	fmt.Printf("kernel observed %d traps across all threads\n", traps)
	fmt.Printf("  register leaks: %d\n", regLeaks)
	fmt.Printf("  heap plaintext leaks: %d\n", memLeaks)
	if checksum == want && regLeaks == 0 && memLeaks == 0 {
		fmt.Println("OK: shared plaintext for the threads, ciphertext for the OS")
	} else {
		fmt.Println("FAILURE")
	}
}
